"""Congestion-control algorithm (CCA) plug-in interface.

Every CCA is an object owned by one :class:`~repro.tcp.sender.TcpSender`.
The sender translates wire events into the calls below; the CCA's only
job is to maintain ``cwnd`` (bytes) and, optionally, a pacing rate.

The interface mirrors the Linux ``tcp_congestion_ops`` surface at the
granularity this reproduction needs:

* :meth:`on_ack`          — cumulative ACK advanced (cong_avoid)
* :meth:`on_dupack`       — duplicate ACK seen (not yet a loss)
* :meth:`on_congestion_event` — loss inferred, entering fast recovery (ssthresh)
* :meth:`on_ecn`          — ECE feedback (DCTCP and BBR2 react)
* :meth:`on_rto`          — retransmission timeout fired
* :meth:`on_recovery_exit`— leaving fast recovery (cwnd = ssthresh, PRR-lite)
* :meth:`pacing_rate_bps` — None for pure window-based algorithms

``cost_units`` given to :meth:`~CcContext.charge` are *relative* CPU
work per operation; the energy layer's cost model converts them to
cycles. Algorithms that do more per-ACK arithmetic (CUBIC's cube root,
BBR's bandwidth filters) charge more, which is one of the two mechanisms
(with protocol dynamics) behind the paper's Fig. 5/6 spread.
"""

from __future__ import annotations

import math
from typing import ClassVar, Optional, Protocol


class AckEvent:
    """Everything a CCA may want to know about one incoming ACK.

    One is allocated per ACK processed, hence ``__slots__``.
    """

    __slots__ = (
        "newly_acked_bytes",
        "cumulative_ack",
        "rtt_sample",
        "flight_bytes",
        "in_recovery",
        "ecn_echo",
        "ecn_marked_bytes",
        "delivery_rate_bps",
        "is_app_limited",
        "int_qlen_bytes",
        "int_tx_bytes",
        "int_timestamp",
        "int_link_rate_bps",
    )

    def __init__(
        self,
        newly_acked_bytes: int,
        cumulative_ack: int,
        rtt_sample: Optional[float],
        flight_bytes: int,
        in_recovery: bool,
        ecn_echo: bool,
        ecn_marked_bytes: int,
        delivery_rate_bps: Optional[float],
        is_app_limited: bool,
        # echoed in-band telemetry from the bottleneck (HPCC-style);
        # None unless the path stamps INT
        int_qlen_bytes: Optional[int] = None,
        int_tx_bytes: Optional[float] = None,
        int_timestamp: Optional[float] = None,
        int_link_rate_bps: Optional[float] = None,
    ) -> None:
        self.newly_acked_bytes = newly_acked_bytes
        self.cumulative_ack = cumulative_ack
        self.rtt_sample = rtt_sample
        self.flight_bytes = flight_bytes
        self.in_recovery = in_recovery
        self.ecn_echo = ecn_echo
        self.ecn_marked_bytes = ecn_marked_bytes
        self.delivery_rate_bps = delivery_rate_bps
        self.is_app_limited = is_app_limited
        self.int_qlen_bytes = int_qlen_bytes
        self.int_tx_bytes = int_tx_bytes
        self.int_timestamp = int_timestamp
        self.int_link_rate_bps = int_link_rate_bps


class CcContext(Protocol):
    """What the owning sender exposes to its CCA."""

    @property
    def mss(self) -> int:
        """Maximum segment size in bytes."""
        ...  # pragma: no cover

    @property
    def now(self) -> float:
        """Current virtual time."""
        ...  # pragma: no cover

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT, if sampled yet."""
        ...  # pragma: no cover

    @property
    def min_rtt(self) -> Optional[float]:
        """Minimum RTT observed."""
        ...  # pragma: no cover

    def charge(self, cost_units: float) -> None:
        """Account CPU work performed by the CCA."""
        ...  # pragma: no cover


#: cwnd can never fall below this many segments.
MIN_CWND_SEGMENTS = 2

#: Initial window per RFC 6928.
INITIAL_WINDOW_SEGMENTS = 10

#: Initial ssthresh, segments. Linux caches ssthresh per destination in
#: tcp_metrics, so repeated runs against the same receiver (exactly what
#: the paper's 10-repetition methodology does) start slow start with a
#: sane exit point instead of probing to catastrophe. 160 full-size
#: 9000-byte segments ~= 1.4 MB, comfortably under the testbed's
#: bottleneck headroom.
INITIAL_SSTHRESH_SEGMENTS = 160


class CongestionControl:
    """Base class: Reno-style slow start plus hooks.

    Subclasses override the reaction methods. The base class implements
    the slow-start half of every loss-based algorithm because nearly all
    of them share it (CUBIC, Scalable, HighSpeed, Westwood, DCTCP all
    slow-start like Reno below ``ssthresh``).
    """

    #: registry key and display name, e.g. "cubic"
    name: ClassVar[str] = "base"
    #: relative CPU work charged per processed ACK (calibrated; see
    #: repro.energy.cost_model for provenance)
    ack_cost_units: ClassVar[float] = 1.0
    #: whether the stack's TCP-Small-Queues backpressure applies; the
    #: paper's custom constant-cwnd module bypasses it (that burstiness
    #: is its defining behaviour, §4.3)
    respects_tsq: ClassVar[bool] = True
    #: after a local qdisc drop, resume sending once the queue drains
    #: below this fraction of its capacity. Well-behaved stacks wait for
    #: real headroom; the baseline hammers the moment a slot opens.
    qdisc_retry_watermark: ClassVar[float] = 0.9

    def __init__(self, ctx: CcContext):
        self.ctx = ctx
        self.cwnd = INITIAL_WINDOW_SEGMENTS * ctx.mss
        self.ssthresh = float(INITIAL_SSTHRESH_SEGMENTS * ctx.mss)

    # -- helpers ----------------------------------------------------------

    @property
    def min_cwnd(self) -> int:
        """Floor for the congestion window in bytes."""
        return MIN_CWND_SEGMENTS * self.ctx.mss

    @property
    def in_slow_start(self) -> bool:
        """Whether cwnd is still below ssthresh."""
        return self.cwnd < self.ssthresh

    def _clamp(self) -> None:
        self.cwnd = max(self.min_cwnd, self.cwnd)

    def slow_start(self, acked_bytes: int) -> int:
        """Grow cwnd by the ACKed bytes (classic exponential growth).

        Returns bytes of ACK not consumed by slow start (when the ACK
        straddles ssthresh), which congestion avoidance should handle.
        """
        room = self.ssthresh - self.cwnd
        if room <= 0:
            return acked_bytes
        used = acked_bytes if room > acked_bytes else min(acked_bytes, int(room))
        self.cwnd += used
        return acked_bytes - used

    # -- events (override in subclasses) ----------------------------------

    def on_ack(self, event: AckEvent) -> None:
        """Cumulative ACK advanced. Default: Reno additive increase."""
        self.ctx.charge(self.ack_cost_units)
        remainder = event.newly_acked_bytes
        if self.in_slow_start:
            remainder = self.slow_start(remainder)
        if remainder > 0:
            # AIMD: one MSS per RTT => mss*mss/cwnd per ACKed MSS.
            self.cwnd += max(1, self.ctx.mss * remainder // max(self.cwnd, 1))
        self._clamp()

    def on_dupack(self, event: AckEvent) -> None:
        """Duplicate ACK observed (before loss is inferred)."""
        self.ctx.charge(self.ack_cost_units * 0.5)

    def on_congestion_event(self, event: AckEvent) -> None:
        """Loss inferred; cut the window. Default: Reno halving."""
        self.ctx.charge(self.ack_cost_units)
        self.ssthresh = max(self.min_cwnd, self.cwnd / 2.0)
        self.cwnd = self.ssthresh
        self._clamp()

    def on_ecn(self, event: AckEvent) -> None:
        """ECE feedback arrived. Default: treat like loss, at most 1/RTT.

        Subclasses with real ECN behaviour (DCTCP) override this; loss-
        based algorithms in the kernel reduce once per window, which the
        sender enforces by only delivering one on_ecn per recovery epoch.
        """
        self.on_congestion_event(event)

    def on_rto(self) -> None:
        """Retransmission timeout: collapse to the minimum window."""
        self.ctx.charge(self.ack_cost_units)
        self.ssthresh = max(self.min_cwnd, self.cwnd / 2.0)
        self.cwnd = self.min_cwnd
        self._clamp()

    def on_recovery_exit(self) -> None:
        """Fast recovery finished; complete the window reduction."""
        self.cwnd = max(self.min_cwnd, self.ssthresh)
        self._clamp()

    def on_sent(self, bytes_sent: int) -> None:
        """A data segment was transmitted (pacing-style CCAs track this)."""

    def pacing_rate_bps(self) -> Optional[float]:
        """Pacing rate, or None for pure ACK-clocked window sending."""
        return None

    # -- introspection -----------------------------------------------------

    @property
    def cwnd_segments(self) -> float:
        """cwnd expressed in MSS units (for traces and tests)."""
        return self.cwnd / self.ctx.mss

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} cwnd={self.cwnd}B "
            f"ssthresh={self.ssthresh if math.isfinite(self.ssthresh) else 'inf'}>"
        )
