"""Scalable TCP (Kelly 2003).

Replaces AIMD with MIMD: grow by a fixed 0.01 MSS per ACKed MSS (so
recovery time after a loss is constant regardless of window size) and cut
by only 1/8 on congestion. Matches Linux's ``tcp_scalable``.
"""

from __future__ import annotations

from repro.cc.base import AckEvent, CongestionControl

#: per-ACK additive constant (Linux: 0.01 via ai=100 shift)
SCALABLE_AI = 0.01
#: multiplicative decrease factor (Linux: 0.875)
SCALABLE_MD = 0.125


class Scalable(CongestionControl):
    """Scalable TCP: constant-time recovery MIMD control."""

    name = "scalable"
    #: barely more work than Reno (shift-based arithmetic in the kernel)
    ack_cost_units = 1.05

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        remainder = event.newly_acked_bytes
        if self.in_slow_start:
            remainder = self.slow_start(remainder)
        if remainder > 0:
            self.cwnd += max(1, int(SCALABLE_AI * remainder))
        self._clamp()

    def on_congestion_event(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        self.ssthresh = max(self.min_cwnd, self.cwnd * (1.0 - SCALABLE_MD))
        self.cwnd = self.ssthresh
        self._clamp()
