"""BBR v2, as the alpha release the paper measured.

BBR2 adds loss and ECN response to v1: an ``inflight_hi`` ceiling that is
cut multiplicatively (beta = 0.7) when loss is detected and grown back
slowly while probing. Our implementation layers that on the v1 state
machine.

The paper found this alpha build consumed ~40 % *more total energy* than
BBR v1 while drawing the *lowest average power* of all algorithms
(Fig. 5 vs Fig. 6) — i.e. it ran markedly slower, and the authors
attribute the gap to implementation immaturity. We model the immaturity
explicitly and controllably (see DESIGN.md, substitutions):

* **bandwidth-probe stalls**: the alpha periodically drops its pacing
  rate to a trickle for a stretch of RTTs (its infamous over-long
  PROBE_RTT / bw-probe-down excursions), costing ~25-30 % of average
  throughput while leaving the bandwidth model intact;
* a conservative STARTUP gain (2.0 instead of 2/ln 2);
* a higher per-ACK computation cost (unoptimized alpha code paths).

The :data:`alpha_quality` flag switches all three off so the ablation
bench can quantify each. The stall duty cycle is expressed in RTT rounds,
which makes the behaviour scale-invariant (it shows up identically in a
20 ms simulated transfer and the paper's 40 s one).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import AckEvent
from repro.cc.bbr import Bbr

#: multiplicative decrease applied to inflight_hi on loss (BBR2 beta).
BBR2_BETA = 0.7

#: alpha-release probe-stall duty cycle, in RTT rounds
STALL_CYCLE_ROUNDS = 24
STALL_ROUNDS = 9
#: pacing multiplier during a stall (a trickle keeps ACKs flowing)
STALL_PACING_FACTOR = 0.2


class Bbr2(Bbr):
    """BBR v2 (alpha-release behaviour as measured by the paper)."""

    name = "bbr2"
    #: the alpha's per-ACK cost: v2's loss/ECN accounting plus unoptimized
    #: code paths (calibrated against the paper's Fig. 6 power spread)
    ack_cost_units = 2.4

    startup_gain = 2.0

    def __init__(self, ctx, alpha_quality: bool = True):
        super().__init__(ctx)
        self.alpha_quality = alpha_quality
        if not alpha_quality:
            # Behave like a mature v2: no startup conservatism, no stalls.
            self.startup_gain = 2.885
        self.inflight_hi: Optional[float] = None
        self._round = 0
        self._round_stamp = 0.0

    # -- alpha probe stalls ---------------------------------------------

    def _advance_round(self) -> None:
        srtt = self.ctx.srtt or self.ctx.min_rtt
        if srtt is None:
            return
        if self.ctx.now - self._round_stamp >= srtt:
            self._round_stamp = self.ctx.now
            self._round += 1

    @property
    def in_probe_stall(self) -> bool:
        """Whether the alpha is currently in a probe-down excursion."""
        return (
            self.alpha_quality
            and self.state == "PROBE_BW"
            and self._round % STALL_CYCLE_ROUNDS
            >= STALL_CYCLE_ROUNDS - STALL_ROUNDS
        )

    def pacing_rate_bps(self) -> Optional[float]:
        rate = super().pacing_rate_bps()
        if rate is not None and self.in_probe_stall:
            rate *= STALL_PACING_FACTOR
        return rate

    # -- v2 loss/ECN response --------------------------------------------

    def on_congestion_event(self, event: AckEvent) -> None:
        """v2 responds to loss: cut the inflight ceiling."""
        self.ctx.charge(self.ack_cost_units)
        current = event.flight_bytes or self.cwnd
        ceiling = self.inflight_hi if self.inflight_hi is not None else current
        self.inflight_hi = max(self.min_cwnd, min(ceiling, current) * BBR2_BETA)

    def on_ecn(self, event: AckEvent) -> None:
        """CE feedback also trims the ceiling, more gently than loss."""
        self.ctx.charge(self.ack_cost_units * 0.5)
        if self.inflight_hi is not None:
            self.inflight_hi = max(self.min_cwnd, self.inflight_hi * 0.9)

    def on_ack(self, event: AckEvent) -> None:
        self._advance_round()
        super().on_ack(event)
        if self.inflight_hi is not None:
            self.cwnd = min(self.cwnd, max(self.min_cwnd, int(self.inflight_hi)))
            # Grow the ceiling back slowly while not losing.
            self.inflight_hi += self.ctx.mss * 0.1
