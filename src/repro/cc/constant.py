"""The paper's custom no-CC baseline kernel module.

§3: "we have created a new kernel module that replaces any CC mechanism
with a large, constant cwnd value. We use this module as the baseline to
compare the energy consumption of CC-only computations."

The window never moves: no slow start, no reduction on loss or ECN, no
reaction at RTO beyond what the sender's retransmission machinery does
on its own. Retransmission timeouts, SACK and loss recovery still work —
they live in the sender, exactly as the paper's module keeps "the same
logic for other TCP mechanisms".

As in the paper (footnote 2), this module must never be used when
multiple flows share a bottleneck: it would drive the network into
congestion collapse. :class:`~repro.harness.experiment` enforces that.
"""

from __future__ import annotations

from repro.cc.base import AckEvent, CongestionControl


class ConstantCwnd(CongestionControl):
    """Fixed, large congestion window: the no-CC baseline."""

    name = "baseline"
    #: no cwnd recomputation at all — the cheapest possible ACK handler
    ack_cost_units = 0.3
    #: the custom module blasts past the host qdisc's backpressure —
    #: "its large cwnd value makes the sender bursty which causes queuing
    #: at the network as well as the sender host" (§4.3)
    respects_tsq = False
    #: ... and retries the moment any qdisc slot opens, wasting CPU
    #: transmit slots on packets the queue then discards again
    qdisc_retry_watermark = 0.995

    #: default window, segments; "large" relative to the testbed BDP
    #: (10 Gb/s x 40 µs = 50 KB ~ 6 full-size segments) and to the host
    #: qdisc, so the sender is burst-limited only by the app and the wire.
    DEFAULT_WINDOW_SEGMENTS = 1400

    def __init__(self, ctx, window_segments: int = DEFAULT_WINDOW_SEGMENTS):
        super().__init__(ctx)
        self.cwnd = window_segments * ctx.mss
        self.ssthresh = float("inf")

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)

    def on_dupack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units * 0.5)

    def on_congestion_event(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)

    def on_ecn(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)

    def on_rto(self) -> None:
        self.ctx.charge(self.ack_cost_units)

    def on_recovery_exit(self) -> None:
        """The window is constant — recovery does not change it."""
