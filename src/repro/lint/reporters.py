"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The JSON schema is versioned and consumed by ``tests/lint`` and any CI
annotation tooling; bump ``SCHEMA_VERSION`` on breaking changes. The
SARIF output follows the OASIS 2.1.0 schema so GitHub code scanning
(and any SARIF viewer) can render findings inline on PRs.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List

from repro.lint.engine import LintResult, iter_rules

SCHEMA_VERSION = 1

#: canonical SARIF 2.1.0 schema location
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

SARIF_VERSION = "2.1.0"


def render_text(result: LintResult) -> str:
    """One ``path:line:col: rule: message`` line per finding + summary."""
    lines = [finding.format() for finding in result.findings]
    if result.findings:
        by_rule = Counter(f.rule for f in result.findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"in {result.files_checked} files ({breakdown})"
        )
    else:
        lines.append(f"clean: {result.files_checked} files, 0 findings")
    return "\n".join(lines)


def to_json_dict(result: LintResult) -> Dict[str, Any]:
    """The JSON-reporter payload as a plain dict."""
    return {
        "version": SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "finding_count": len(result.findings),
        "rules_run": list(result.rules_run),
        "counts_by_rule": dict(
            sorted(Counter(f.rule for f in result.findings).items())
        ),
        "findings": [finding.to_dict() for finding in result.findings],
    }


def render_json(result: LintResult) -> str:
    """Stable, indented JSON for CI consumption."""
    return json.dumps(to_json_dict(result), indent=2, sort_keys=True)


def _sarif_rule_entries(result: LintResult) -> List[Dict[str, Any]]:
    """Rule metadata for the SARIF driver.

    Registered rules contribute their descriptions; pseudo-rules that
    only the engine emits (``parse-error``, suppression hygiene) appear
    when a finding references them, so every result's ``ruleId``
    resolves to a driver rule as the spec requires.
    """
    entries: List[Dict[str, Any]] = []
    seen = set()
    for rule in iter_rules():
        entries.append(
            {
                "id": rule.name,
                "shortDescription": {"text": rule.description},
                "properties": {"family": rule.family},
            }
        )
        seen.add(rule.name)
    for finding in result.findings:
        if finding.rule not in seen:
            seen.add(finding.rule)
            entries.append(
                {
                    "id": finding.rule,
                    "shortDescription": {"text": f"{finding.family} pseudo-rule"},
                    "properties": {"family": finding.family},
                }
            )
    return entries


def to_sarif_dict(result: LintResult) -> Dict[str, Any]:
    """The SARIF 2.1.0 log as a plain dict."""
    rules = _sarif_rule_entries(result)
    index = {entry["id"]: i for i, entry in enumerate(rules)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "semanticVersion": f"{SCHEMA_VERSION}.0.0",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    """Stable, indented SARIF 2.1.0 text."""
    return json.dumps(to_sarif_dict(result), indent=2, sort_keys=True)
