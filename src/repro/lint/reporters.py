"""Finding reporters: human-readable text and machine-readable JSON.

The JSON schema is versioned and consumed by ``tests/lint`` and any CI
annotation tooling; bump ``SCHEMA_VERSION`` on breaking changes.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict

from repro.lint.engine import LintResult

SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """One ``path:line:col: rule: message`` line per finding + summary."""
    lines = [finding.format() for finding in result.findings]
    if result.findings:
        by_rule = Counter(f.rule for f in result.findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"in {result.files_checked} files ({breakdown})"
        )
    else:
        lines.append(f"clean: {result.files_checked} files, 0 findings")
    return "\n".join(lines)


def to_json_dict(result: LintResult) -> Dict[str, Any]:
    """The JSON-reporter payload as a plain dict."""
    return {
        "version": SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "finding_count": len(result.findings),
        "rules_run": list(result.rules_run),
        "counts_by_rule": dict(
            sorted(Counter(f.rule for f in result.findings).items())
        ),
        "findings": [finding.to_dict() for finding in result.findings],
    }


def render_json(result: LintResult) -> str:
    """Stable, indented JSON for CI consumption."""
    return json.dumps(to_json_dict(result), indent=2, sort_keys=True)
