"""simlint engine: file discovery, rule dispatch, suppression filtering.

Parsing happens once per file; rules see :class:`ModuleInfo` objects
plus a shared :class:`LintContext` for cross-module questions. Findings
on lines carrying a matching ``# simlint: ignore[...]`` comment are
dropped here so individual rules stay comment-oblivious.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint.core import Finding, LintContext, LintUsageError, ModuleInfo, Rule
from repro.lint.rules import ALL_RULES

#: pseudo-rule reported when a target file does not parse
PARSE_ERROR_RULE = "parse-error"

#: directories never descended into during discovery
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_rules() -> List[Rule]:
    """All registered rules (stable order: by family, then name)."""
    return sorted(ALL_RULES, key=lambda r: (r.family, r.name))


def all_rule_names() -> List[str]:
    """Names of every registered rule."""
    return [rule.name for rule in iter_rules()]


def _iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if not any(part in _SKIP_DIRS for part in path.parts):
            yield path


def _display_path(path: Path) -> str:
    """Path as printed in findings: relative to CWD when possible."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    rules = iter_rules()
    if select is None:
        return rules
    known = {rule.name for rule in rules}
    requested = [name.strip() for name in select if name.strip()]
    unknown = sorted(set(requested) - known)
    if unknown:
        raise LintUsageError(
            f"unknown rule(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    if not requested:
        raise LintUsageError("empty rule selection")
    return [rule for rule in rules if rule.name in requested]


def run_lint(
    paths: Iterable[str], select: Optional[Sequence[str]] = None
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    ``select`` optionally restricts to a subset of rule names (raises
    :class:`LintUsageError` for unknown names, as does a missing path).
    Unparseable files surface as ``parse-error`` findings rather than
    aborting the run.
    """
    rules = _select_rules(select)
    files: List[Path] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise LintUsageError(f"no such file or directory: {raw}")
        files.extend(_iter_python_files(root))

    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for path in files:
        display = _display_path(path)
        try:
            modules.append(ModuleInfo.parse(path, display))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule=PARSE_ERROR_RULE,
                    family="engine",
                    message=f"file does not parse: {exc.msg}",
                )
            )

    ctx = LintContext(modules)
    for module in modules:
        for rule in rules:
            for finding in rule.check(module, ctx):
                if not module.suppressed(finding.rule, finding.line):
                    findings.append(finding)

    return LintResult(
        findings=sorted(findings),
        files_checked=len(files),
        rules_run=[rule.name for rule in rules],
    )
