"""simlint engine: file discovery, rule dispatch, suppression filtering.

Parsing happens once per file; rules see :class:`ModuleInfo` objects
plus a shared :class:`LintContext` for cross-module questions. Findings
on lines carrying a matching ``simlint: ignore[...]`` comment are
dropped here so individual rules stay comment-oblivious — and the
engine tracks which comments actually earned their keep, reporting
``unused-suppression`` for dead ones and ``unknown-suppression`` for
bracket lists naming rules that do not exist (both only on full runs,
where "nothing matched" is meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.core import (
    Finding,
    LintContext,
    LintUsageError,
    ModuleInfo,
    Rule,
    SUPPRESS_ALL,
)
from repro.lint.rules import ALL_RULES

#: pseudo-rule reported when a target file does not parse
PARSE_ERROR_RULE = "parse-error"

#: pseudo-rule for a ``simlint: ignore`` comment that suppressed nothing
UNUSED_SUPPRESSION_RULE = "unused-suppression"

#: pseudo-rule for bracket lists naming rules that are not registered
UNKNOWN_SUPPRESSION_RULE = "unknown-suppression"

#: family shared by the engine's pseudo-findings
ENGINE_FAMILY = "engine"

#: directories never descended into during discovery
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}

#: files marking a project root for display-path purposes
_ROOT_MARKERS = ("pyproject.toml", ".git")


def iter_rules() -> List[Rule]:
    """All registered rules (stable order: by family, then name)."""
    return sorted(ALL_RULES, key=lambda r: (r.family, r.name))


def all_rule_names() -> List[str]:
    """Names of every registered rule."""
    return [rule.name for rule in iter_rules()]


def _iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if not any(part in _SKIP_DIRS for part in path.parts):
            yield path


def _anchor_for(root: Path) -> Path:
    """Directory display paths are made relative to.

    The nearest ancestor of the lint root carrying a project marker
    (``pyproject.toml`` or ``.git``), so ``src/repro/...`` paths come
    out identical no matter which directory the tool runs from — a
    committed baseline and a CI run must agree on them. Falls back to
    the root's parent when no marker exists (e.g. fixture trees).
    """
    resolved = root.resolve()
    probe = resolved if resolved.is_dir() else resolved.parent
    for candidate in (probe, *probe.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return probe.parent


def _display_path(path: Path, anchor: Path) -> str:
    """Path as printed in findings: relative to the project anchor."""
    try:
        return path.resolve().relative_to(anchor).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def _validated_names(
    names: Sequence[str], known: Set[str], what: str
) -> List[str]:
    requested = [name.strip() for name in names if name.strip()]
    unknown = sorted(set(requested) - known)
    if unknown:
        raise LintUsageError(
            f"unknown rule(s) in --{what}: {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    if not requested:
        raise LintUsageError(f"empty rule list for --{what}")
    return requested


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    rules = iter_rules()
    known = {rule.name for rule in rules}
    if select is not None:
        wanted = set(_validated_names(select, known, "select"))
        rules = [rule for rule in rules if rule.name in wanted]
    if ignore is not None:
        dropped = set(_validated_names(ignore, known, "ignore"))
        rules = [rule for rule in rules if rule.name not in dropped]
    if not rules:
        raise LintUsageError("rule selection excludes every rule")
    return rules


def _suppression_findings(
    module: ModuleInfo, used_lines: Set[int], known: Set[str]
) -> Iterator[Finding]:
    """Hygiene pseudo-findings for one module's ignore comments."""
    for line, rules in sorted(module.suppressions.items()):
        unknown = sorted(rules - known - {SUPPRESS_ALL})
        if unknown:
            yield Finding(
                path=module.display_path,
                line=line,
                col=1,
                rule=UNKNOWN_SUPPRESSION_RULE,
                family=ENGINE_FAMILY,
                message=(
                    f"simlint ignore comment names unknown rule(s): "
                    f"{', '.join(unknown)}"
                ),
            )
            continue
        if line not in used_lines:
            yield Finding(
                path=module.display_path,
                line=line,
                col=1,
                rule=UNUSED_SUPPRESSION_RULE,
                family=ENGINE_FAMILY,
                message=(
                    "simlint ignore comment suppresses nothing on this "
                    "line; remove it"
                ),
            )


def run_lint(
    paths: Iterable[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    ``select`` optionally restricts to a subset of rule names, and
    ``ignore`` drops named rules from whatever is selected (both raise
    :class:`LintUsageError` for unknown names, as does a missing path).
    Unparseable files surface as ``parse-error`` findings rather than
    aborting the run. On full runs — no ``select``, no ``ignore`` — the
    engine also audits the suppression comments themselves: an ignore
    comment that suppressed nothing becomes ``unused-suppression``, and
    one naming a rule that does not exist becomes
    ``unknown-suppression``.
    """
    rules = _select_rules(select, ignore)
    full_run = select is None and ignore is None
    files: List[Path] = []
    anchors: List[Path] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise LintUsageError(f"no such file or directory: {raw}")
        anchor = _anchor_for(root)
        for path in _iter_python_files(root):
            files.append(path)
            anchors.append(anchor)

    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for path, anchor in zip(files, anchors):
        display = _display_path(path, anchor)
        try:
            modules.append(ModuleInfo.parse(path, display))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule=PARSE_ERROR_RULE,
                    family=ENGINE_FAMILY,
                    message=f"file does not parse: {exc.msg}",
                )
            )

    ctx = LintContext(modules)
    used: List[Set[int]] = [set() for _ in modules]
    for module, used_lines in zip(modules, used):
        for rule in rules:
            for finding in rule.check(module, ctx):
                if module.suppressed(finding.rule, finding.line):
                    used_lines.add(finding.line)
                else:
                    findings.append(finding)

    if full_run:
        known = set(all_rule_names())
        for module, used_lines in zip(modules, used):
            findings.extend(_suppression_findings(module, used_lines, known))

    return LintResult(
        findings=sorted(findings),
        files_checked=len(files),
        rules_run=[rule.name for rule in rules],
    )
