"""API-hygiene family: small Python footguns with outsized blast radius.

These are generic (not simulator-specific) but each one has bitten a
CCA-comparison harness somewhere: a mutable default argument shares
state across *flows*; a bare ``except:`` swallows ``KeyboardInterrupt``
and simulator invariant errors alike; and a module without
``from __future__ import annotations`` breaks the project's typing
conventions (string annotations are what let determinism-critical
modules import ``random`` under ``TYPE_CHECKING`` only).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintContext, ModuleInfo, Rule

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CONSTRUCTORS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_CONSTRUCTORS:
            return True
    return False


class MutableDefault(Rule):
    """Mutable default argument values."""

    name = "api-mutable-default"
    family = "api-hygiene"
    description = (
        "mutable default argument ([]/{}/set()); shared across calls — "
        "default to None and create inside"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"mutable default `{module.segment(default)}` in "
                        f"`{label}`; one instance is shared by every call",
                    )


class BareExcept(Rule):
    """``except:`` with no exception type."""

    name = "api-bare-except"
    family = "api-hygiene"
    description = (
        "bare `except:` catches SystemExit/KeyboardInterrupt and hides "
        "simulator invariant errors; name the exception type"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:`; catch a specific exception (at "
                    "minimum `except Exception:`)",
                )


class MissingFutureAnnotations(Rule):
    """Module lacks ``from __future__ import annotations``."""

    name = "api-missing-future"
    family = "api-hygiene"
    description = (
        "module lacks `from __future__ import annotations` (required for "
        "TYPE_CHECKING-only imports and cheap annotations)"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        statements = module.tree.body
        # docstring-only (or empty) modules have nothing to annotate
        meaningful = [
            s
            for s in statements
            if not (
                isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant)
            )
        ]
        if not meaningful:
            return
        for stmt in statements:
            if (
                isinstance(stmt, ast.ImportFrom)
                and stmt.module == "__future__"
                and any(alias.name == "annotations" for alias in stmt.names)
            ):
                return
        yield self.finding(
            module,
            meaningful[0],
            "missing `from __future__ import annotations` at module top",
        )


HYGIENE_RULES = [MutableDefault(), BareExcept(), MissingFutureAnnotations()]
