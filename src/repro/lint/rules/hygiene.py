"""API-hygiene family: small Python footguns with outsized blast radius.

These are generic (not simulator-specific) but each one has bitten a
CCA-comparison harness somewhere: a mutable default argument shares
state across *flows*; a bare ``except:`` swallows ``KeyboardInterrupt``
and simulator invariant errors alike; and a module without
``from __future__ import annotations`` breaks the project's typing
conventions (string annotations are what let determinism-critical
modules import ``random`` under ``TYPE_CHECKING`` only).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintContext, ModuleInfo, Rule

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CONSTRUCTORS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_CONSTRUCTORS:
            return True
    return False


class MutableDefault(Rule):
    """Mutable default argument values."""

    name = "api-mutable-default"
    family = "api-hygiene"
    description = (
        "mutable default argument ([]/{}/set()); shared across calls — "
        "default to None and create inside"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"mutable default `{module.segment(default)}` in "
                        f"`{label}`; one instance is shared by every call",
                    )


class BareExcept(Rule):
    """``except:`` with no exception type."""

    name = "api-bare-except"
    family = "api-hygiene"
    description = (
        "bare `except:` catches SystemExit/KeyboardInterrupt and hides "
        "simulator invariant errors; name the exception type"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:`; catch a specific exception (at "
                    "minimum `except Exception:`)",
                )


class MissingFutureAnnotations(Rule):
    """Module lacks ``from __future__ import annotations``."""

    name = "api-missing-future"
    family = "api-hygiene"
    description = (
        "module lacks `from __future__ import annotations` (required for "
        "TYPE_CHECKING-only imports and cheap annotations)"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        statements = module.tree.body
        # docstring-only (or empty) modules have nothing to annotate
        meaningful = [
            s
            for s in statements
            if not (
                isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant)
            )
        ]
        if not meaningful:
            return
        for stmt in statements:
            if (
                isinstance(stmt, ast.ImportFrom)
                and stmt.module == "__future__"
                and any(alias.name == "annotations" for alias in stmt.names)
            ):
                return
        yield self.finding(
            module,
            meaningful[0],
            "missing `from __future__ import annotations` at module top",
        )


#: scheduling-policy names whose string comparison means mode-branching
_SCHED_LITERALS = frozenset({"fair", "serialized", "srpt"})

#: the policy subsystem itself (registry, aliases, policy classes) may
#: of course name its own policies
_SCHED_PACKAGE_DIR = "sched"


def _banned_literal(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in _SCHED_LITERALS
    ):
        return node.value
    return None


def _literal_container_hit(node: ast.AST) -> str | None:
    """A policy literal inside a literal tuple/list of strings, if any."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    for element in node.elts:
        hit = _banned_literal(element)
        if hit is not None:
            return hit
    return None


class SchedModeLiteral(Rule):
    """String comparison against a scheduling-policy name."""

    name = "sched-no-mode-literals"
    family = "api-hygiene"
    description = (
        "comparison against a scheduling-mode literal ('fair'/"
        "'serialized'/'srpt') outside repro/sched; dispatch through the "
        "policy registry (resolve_policy_name/get_policy) instead"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if module.in_directory(_SCHED_PACKAGE_DIR):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                left, right = operands[i], operands[i + 1]
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    hit = _banned_literal(left) or _banned_literal(right)
                    if hit is not None:
                        yield self.finding(
                            module,
                            node,
                            f"equality test against policy literal "
                            f"{hit!r}; mode-branching belongs in "
                            f"repro/sched — dispatch through the "
                            f"registry or a named constant",
                        )
                elif isinstance(op, (ast.In, ast.NotIn)):
                    # `"fair" in names` (validating a dynamic list) is
                    # fine; `policy in ("fair", ...)` is a mode branch.
                    hit = _literal_container_hit(right)
                    if hit is not None:
                        yield self.finding(
                            module,
                            node,
                            f"membership test over a literal policy-name "
                            f"container (contains {hit!r}); dispatch "
                            f"through the repro/sched registry instead",
                        )


HYGIENE_RULES = [
    MutableDefault(),
    BareExcept(),
    MissingFutureAnnotations(),
    SchedModeLiteral(),
]
