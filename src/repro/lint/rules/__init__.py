"""Rule registry: one module per family, assembled into ``ALL_RULES``."""

from __future__ import annotations

from typing import List

from repro.lint.core import Rule
from repro.lint.rules.contract import CONTRACT_RULES
from repro.lint.rules.determinism import DETERMINISM_RULES
from repro.lint.rules.detflow import DETFLOW_RULES
from repro.lint.rules.hygiene import HYGIENE_RULES
from repro.lint.rules.perf import PERF_RULES
from repro.lint.rules.units import UNITS_RULES
from repro.lint.rules.unitsflow import UNITSFLOW_RULES

ALL_RULES: List[Rule] = [
    *UNITS_RULES,
    *UNITSFLOW_RULES,
    *DETERMINISM_RULES,
    *DETFLOW_RULES,
    *CONTRACT_RULES,
    *HYGIENE_RULES,
    *PERF_RULES,
]

__all__ = ["ALL_RULES"]
