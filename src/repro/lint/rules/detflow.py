"""Determinism-flow family: entropy must not *reach* simulation state.

The per-file determinism rules ban calling ``random.random()`` or
``time.time()`` inside the simulator packages — but they cannot see a
helper in ``util/`` returning a wall-clock value that a sender then
stores in its state two modules away. These rules close that gap with
the taint engine from :mod:`repro.lint.dataflow`:

* **sources** — the global RNG (``random.*``), wall clocks (``time.*``,
  ``datetime.now``), OS entropy (``os.urandom``, ``uuid.uuid4``,
  ``secrets.*``), process identity (``os.getpid`` …), and the iteration
  order of unordered sets. Draws from seeded ``RngRegistry`` streams
  are deliberately *not* sources: the registry derives every stream
  from the master seed — it is the sanctioned path, and the thing this
  family protects.
* **sinks** — writes to simulation state (attribute assignment inside
  ``sim/``/``net/``/``cc/``/``tcp/``) and arguments to
  ``schedule``/``schedule_at`` calls anywhere (they become event times
  and payloads).
* **propagation** — through assignments, returns and call arguments,
  inter-procedurally via function summaries; ``sorted(...)`` (and other
  order-erasing reducers) sanitize set-order taint.

A flow whose taint enters a function through a parameter is reported at
the call site that supplied the tainted argument, so each bug surfaces
once, where the entropy originates.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.core import Finding, LintContext, ModuleInfo, Rule, dotted_name
from repro.lint.dataflow import Sink, TaintEngine, TaintHit
from repro.lint.graph import FunctionInfo, module_key
from repro.lint.rules.determinism import (
    GLOBAL_RNG_FUNCTIONS,
    PROCESS_IDENTITY_FUNCTIONS,
    SIM_DIRECTORIES,
    WALL_CLOCK_FUNCTIONS,
)

#: label prefixes partitioning hits between the two rules
_ENTROPY = "entropy:"
_ORDER = "order:"

#: pseudo-label carried by set *values*; becomes real order taint only
#: when the set is iterated (see ``_transform_iteration``)
_SET_VALUE = "setvalue"

#: methods whose arguments become event-loop state
_SCHEDULE_CALLS = frozenset({"schedule", "schedule_at", "call_later"})


def _classify_source(dotted: Optional[str], node: ast.AST) -> Optional[str]:
    """Label entropy-producing calls and unordered-set expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return _SET_VALUE
    if not isinstance(node, ast.Call):
        return None
    if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
        return _SET_VALUE
    if dotted is None:
        return None
    parts = dotted.split(".")
    if len(parts) < 2:
        return None
    head, tail = parts[0], parts[-1]
    if head == "random" and tail in GLOBAL_RNG_FUNCTIONS:
        return f"{_ENTROPY}the global RNG (`{dotted}()`)"
    if head in ("time", "datetime") and tail in WALL_CLOCK_FUNCTIONS:
        return f"{_ENTROPY}a wall-clock read (`{dotted}()`)"
    if (
        (head == "os" and tail == "urandom")
        or (head == "uuid" and tail in ("uuid1", "uuid4"))
        or head == "secrets"
    ):
        return f"{_ENTROPY}OS entropy (`{dotted}()`)"
    identity = PROCESS_IDENTITY_FUNCTIONS.get(head)
    if identity and tail in identity:
        return f"{_ENTROPY}process identity (`{dotted}()`)"
    return None


def _transform_iteration(labels: Set[str]) -> Set[str]:
    """Iterating a set value turns its order into real taint."""
    if _SET_VALUE not in labels:
        return labels
    return (labels - {_SET_VALUE}) | {_ORDER + "unordered set iteration"}


def _sinks_of(func: FunctionInfo) -> List[Sink]:
    """Simulation-state writes and scheduler arguments in one function."""
    sinks: List[Sink] = []
    in_sim = any(d in func.module.parts[:-1] for d in SIM_DIRECTORIES)
    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign) and in_sim:
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    chain = dotted_name(target) or target.attr
                    sinks.append(
                        Sink(node.value, f"simulation state `{chain}`", node)
                    )
        elif isinstance(node, ast.AugAssign) and in_sim:
            if isinstance(node.target, ast.Attribute):
                chain = dotted_name(node.target) or node.target.attr
                sinks.append(
                    Sink(node.value, f"simulation state `{chain}`", node)
                )
        elif isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if (
                callee is not None
                and callee.split(".")[-1] in _SCHEDULE_CALLS
            ):
                for arg in node.args:
                    sinks.append(
                        Sink(arg, "a scheduled event (time or payload)", node)
                    )
    return sinks


def _engine(ctx: LintContext) -> TaintEngine:
    return ctx.memo(
        "detflow.engine",
        lambda: TaintEngine(
            ctx.graph,
            classify_source=_classify_source,
            sinks_of=_sinks_of,
            transform_iteration=_transform_iteration,
        ),
    )


def _hits(ctx: LintContext) -> List[TaintHit]:
    return ctx.memo("detflow.hits", lambda: list(_engine(ctx).hits()))


class FlowRule(Rule):
    """Base: report engine hits carrying this rule's label prefix."""

    family = "determinism-flow"
    prefix = ""

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        key = module_key(module)
        for hit in _hits(ctx):
            func = ctx.graph.functions.get(hit.function)
            if func is None or func.module is not module:
                continue
            labels = sorted(
                label[len(self.prefix):]
                for label in hit.labels
                if label.startswith(self.prefix)
            )
            if not labels:
                continue
            local = hit.function[len(key) + 1:] if hit.function.startswith(
                key + "."
            ) else hit.function
            yield self.finding(
                module,
                hit.anchor,
                f"{' and '.join(labels)} reaches {hit.sink} in `{local}`; "
                f"{self.remedy}",
            )


class EntropyToState(FlowRule):
    """Unseeded entropy flowing into simulation state or the scheduler."""

    name = "detflow-entropy-to-state"
    prefix = _ENTROPY
    description = (
        "a value derived from the global RNG / wall clock / OS entropy "
        "flows (possibly through other functions) into simulation state "
        "or a scheduled event"
    )
    remedy = (
        "derive the value from a seeded RngRegistry stream or virtual time"
    )


class SetOrderToState(FlowRule):
    """Set-iteration order flowing into simulation state."""

    name = "detflow-set-order"
    prefix = _ORDER
    description = (
        "a value whose ordering comes from iterating an unordered set "
        "flows into simulation state or a scheduled event"
    )
    remedy = "sort the set (sorted(...)) before its order can matter"


DETFLOW_RULES = [EntropyToState(), SetOrderToState()]
