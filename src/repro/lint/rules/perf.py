"""Perf family: keep the event loop's hot path allocation- and
dispatch-light.

The ROADMAP's top open item is a profile-driven engine overhaul — the
pure-Python event loop is the ceiling on sweep throughput. These rules
encode what the profiles keep showing, with *hotness* computed from the
call graph (:mod:`repro.lint.graph`), never from hardcoded file lists:

* **hot roots** are ``Simulator.run``/``step``, ``*Queue.service``/
  ``enqueue``/``dequeue`` and ``*Sender.on_ack``/``handle_packet``,
  plus every function whose reference is ever passed to a
  ``schedule(...)`` call — the event loop executes those through
  ``event.callback(*event.args)``, which syntactic call resolution
  cannot see;
* anything **reachable** from those roots runs per event, so per-call
  container literals, f-strings and closures there are per-event
  allocations (``perf-alloc-in-hot-path``);
* CPython re-executes every attribute lookup, so a ``self._queue`` read
  repeated in a tight loop is N dict probes where one local would do
  (``perf-attr-in-loop``);
* instances created per event without ``__slots__`` each carry a
  ``__dict__`` (``perf-missing-slots``);
* ``isinstance`` checks and exception-handler dispatch in the hot path
  trade branch cost for control flow better expressed with lookups
  (``perf-hot-dispatch``) — ``try/finally`` without handlers is exempt,
  it is how ``Simulator.run`` guards re-entrancy.

Scope: findings are only emitted inside the simulator packages
(``sim/``, ``net/``, ``cc/``, ``tcp/``), and only in functions the call
graph proves (conservatively) reachable from the roots. Error paths —
anything under a ``raise`` — are exempt everywhere: failing fast may
allocate.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.core import Finding, LintContext, ModuleInfo, Rule, dotted_name
from repro.lint.graph import FunctionInfo, ProjectGraph
from repro.lint.rules.determinism import SIM_DIRECTORIES

#: (class-name fnmatch pattern, method names) rooting the hot set
HOT_ROOTS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("Simulator", ("run", "step")),
    ("*Queue", ("service", "enqueue", "dequeue")),
    ("*Sender", ("on_ack", "handle_packet")),
)

#: bases marking error classes; instantiation there is a failing path
_ERROR_BASES = frozenset({"Exception", "BaseException", "ValueError", "Error"})


def hot_functions(ctx: LintContext) -> FrozenSet[str]:
    """Qualnames reachable from the hot roots (memoized per run)."""

    def build() -> FrozenSet[str]:
        graph: ProjectGraph = ctx.graph
        roots: List[str] = []
        for pattern, methods in HOT_ROOTS:
            roots.extend(graph.find_methods(pattern, methods))
        roots.extend(graph.scheduled_callbacks)
        return graph.reachable(roots)

    return ctx.memo("perf.hot_functions", build)


def _in_sim_scope(module: ModuleInfo) -> bool:
    return any(module.in_directory(d) for d in SIM_DIRECTORIES)


def _under_raise(module: ModuleInfo, node: ast.AST) -> bool:
    """Whether ``node`` sits inside a ``raise`` statement."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Raise):
            return True
    return False


def _hot_functions_in(
    module: ModuleInfo, ctx: LintContext
) -> Iterator[FunctionInfo]:
    """Hot functions defined in ``module``."""
    hot = hot_functions(ctx)
    for qual, info in sorted(ctx.graph.functions.items()):
        if info.module is module and qual in hot:
            yield info


class HotPathRule(Rule):
    """Base for rules that inspect hot functions in sim packages."""

    family = "perf"

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if not _in_sim_scope(module):
            return
        for func in _hot_functions_in(module, ctx):
            yield from self.check_function(module, ctx, func)

    def check_function(
        self, module: ModuleInfo, ctx: LintContext, func: FunctionInfo
    ) -> Iterator[Finding]:
        raise NotImplementedError


class AllocInHotPath(HotPathRule):
    """Per-event allocations in functions reachable from the event loop."""

    name = "perf-alloc-in-hot-path"
    description = (
        "allocation (container literal, f-string, closure, comprehension) "
        "in a function the call graph reaches from the event loop; hoist "
        "it out of the per-event path"
    )

    _WHAT = {
        ast.Dict: "dict literal",
        ast.List: "list literal",
        ast.Set: "set literal",
        ast.JoinedStr: "f-string",
        ast.Lambda: "lambda closure",
        ast.ListComp: "list comprehension",
        ast.SetComp: "set comprehension",
        ast.DictComp: "dict comprehension",
    }

    def check_function(
        self, module: ModuleInfo, ctx: LintContext, func: FunctionInfo
    ) -> Iterator[Finding]:
        annotated = self._annotation_nodes(func.node)
        for node in ast.walk(func.node):
            if node is func.node or id(node) in annotated:
                continue
            what = self._classify(node)
            if what is None:
                continue
            if _under_raise(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"{what} allocates on every event in hot function "
                f"`{func.name}` (reachable from the event loop); build it "
                f"once outside the per-event path",
            )

    def _classify(self, node: ast.AST) -> Optional[str]:
        what = self._WHAT.get(type(node))
        if what is not None:
            return what
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a def executed per call builds a new closure object
            return "nested function definition"
        return None

    @staticmethod
    def _annotation_nodes(root: ast.AST) -> FrozenSet[int]:
        """ids of nodes inside annotations; `Callable[[], ...]` holds an
        ast.List that never allocates at runtime under
        ``from __future__ import annotations``."""
        anchors: List[ast.AST] = []
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    args.vararg,
                    args.kwarg,
                ):
                    if arg is not None and arg.annotation is not None:
                        anchors.append(arg.annotation)
                if node.returns is not None:
                    anchors.append(node.returns)
            elif isinstance(node, ast.AnnAssign):
                anchors.append(node.annotation)
        ids = set()
        for anchor in anchors:
            ids.update(id(sub) for sub in ast.walk(anchor))
        return frozenset(ids)


class AttrInLoop(HotPathRule):
    """The same attribute chain read ≥ 3 times inside one hot loop."""

    name = "perf-attr-in-loop"
    description = (
        "attribute chain read repeatedly inside a loop in a hot function; "
        "CPython re-runs the lookup every time — hoist it to a local"
    )

    #: minimum loads of one chain inside a single loop before flagging
    THRESHOLD = 3

    def check_function(
        self, module: ModuleInfo, ctx: LintContext, func: FunctionInfo
    ) -> Iterator[Finding]:
        for node in ast.walk(func.node):
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            yield from self._check_loop(module, func, node)

    def _check_loop(
        self, module: ModuleInfo, func: FunctionInfo, loop: ast.AST
    ) -> Iterator[Finding]:
        loads: Dict[str, List[ast.Attribute]] = {}
        written: set = set()
        for node in ast.walk(loop):
            if isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain is None:
                    continue
                if isinstance(node.ctx, ast.Load):
                    loads.setdefault(chain, []).append(node)
                else:
                    written.add(chain)
            elif isinstance(node, ast.Name) and not isinstance(
                node.ctx, ast.Load
            ):
                written.add(node.id)
        flagged = {
            chain
            for chain, sites in loads.items()
            if len(sites) >= self.THRESHOLD
        }
        for chain in sorted(flagged):
            sites = loads[chain]
            parts = chain.split(".")
            prefixes = {".".join(parts[:i]) for i in range(1, len(parts) + 1)}
            if prefixes & written:
                continue  # rebound inside the loop; hoisting is unsafe
            if any(
                other != chain and other.startswith(chain + ".")
                for other in flagged
            ):
                continue  # report only the longest chain; one hoist fixes both
            yield self.finding(
                module,
                sites[0],
                f"`{chain}` read {len(sites)} times inside this loop in hot "
                f"function `{func.name}`; bind it to a local before the loop",
            )


class MissingSlots(Rule):
    """Classes instantiated in the hot path without ``__slots__``."""

    name = "perf-missing-slots"
    family = "perf"
    description = (
        "class instantiated inside the event loop's reachable set has no "
        "__slots__; every instance carries a __dict__"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        graph: ProjectGraph = ctx.graph
        hot_classes = ctx.memo(
            "perf.hot_classes",
            lambda: graph.classes_instantiated_by(hot_functions(ctx)),
        )
        for qual in sorted(hot_classes):
            info = graph.classes.get(qual)
            if info is None or info.module is not module:
                continue
            if info.has_slots or not _in_sim_scope(module):
                continue
            if self._is_error_class(info.name, info.bases):
                continue  # raised, not hot
            yield self.finding(
                module,
                info.node,
                f"`{info.name}` is instantiated in the event loop's "
                f"reachable set but defines no __slots__; each instance "
                f"pays for a __dict__",
            )

    @staticmethod
    def _is_error_class(name: str, bases: List[str]) -> bool:
        return (
            name.endswith(("Error", "Exception", "Warning"))
            or bool(_ERROR_BASES.intersection(bases))
            or any(base.endswith("Error") for base in bases)
        )


class HotDispatch(HotPathRule):
    """``isinstance``/except-handler dispatch in hot functions."""

    name = "perf-hot-dispatch"
    description = (
        "isinstance() or try/except dispatch in a hot function; prefer a "
        "lookup (dict.get) or polymorphism — try/finally is exempt"
    )

    def check_function(
        self, module: ModuleInfo, ctx: LintContext, func: FunctionInfo
    ) -> Iterator[Finding]:
        for node in ast.walk(func.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and not _under_raise(module, node)
            ):
                yield self.finding(
                    module,
                    node,
                    f"isinstance() in hot function `{func.name}`; per-event "
                    f"type dispatch belongs in a lookup table or a method",
                )
            elif isinstance(node, ast.Try) and node.handlers:
                yield self.finding(
                    module,
                    node,
                    f"try/except in hot function `{func.name}` sets up "
                    f"handler state per event; use a non-raising lookup "
                    f"(e.g. dict.get) on the expected path",
                )


PERF_RULES = [
    AllocInHotPath(),
    AttrInLoop(),
    HotDispatch(),
    MissingSlots(),
]
