"""Units family: enforce the SI-base-unit convention of ``repro.units``.

The simulator's contract (see ``src/repro/units.py``) is that time is
seconds, sizes are bytes, rates are bits/second and energy is joules.
Identifier *suffixes* carry that contract through the code
(``duration_s``, ``rate_bps``, ``energy_j``), which makes two whole bug
classes statically detectable:

* adding/subtracting/comparing quantities whose suffixes disagree
  (``duration_s + delay_ms``, ``rate_gbps - rate_bps``), and
* passing a value with one suffix to a parameter named with another
  (``f(rate_bps=link_gbps)``).

A third rule bans raw exponent literals (``1e9``, ``1024**3``) outside
``units.py`` so magnitudes are written with the named helpers
(``gbps(10)``, ``msec(1)``) the rest of the code can grep for.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import Finding, LintContext, ModuleInfo, Rule, dotted_name

#: identifier suffix -> (dimension, scale). Scales within one dimension
#: are still mutually incompatible without an explicit conversion.
UNIT_SUFFIXES: Dict[str, Tuple[str, str]] = {
    "bps": ("rate", "bps"),
    "kbps": ("rate", "kbps"),
    "mbps": ("rate", "mbps"),
    "gbps": ("rate", "gbps"),
    "bytes": ("data", "bytes"),
    "bits": ("data", "bits"),
    "s": ("time", "s"),
    "sec": ("time", "s"),
    "ms": ("time", "ms"),
    "msec": ("time", "ms"),
    "us": ("time", "us"),
    "usec": ("time", "us"),
    "ns": ("time", "ns"),
    "j": ("energy", "j"),
    "uj": ("energy", "uj"),
    "kj": ("energy", "kj"),
    "w": ("power", "w"),
    "mw": ("power", "mw"),
}

#: longest suffix first so ``_gbps`` wins over ``_bps``
_ORDERED_SUFFIXES = sorted(UNIT_SUFFIXES, key=len, reverse=True)

#: return units of the helpers in :mod:`repro.units`
HELPER_RETURNS: Dict[str, Tuple[str, str]] = {
    "gbps": ("rate", "bps"),
    "mbps": ("rate", "bps"),
    "to_gbps": ("rate", "gbps"),
    "gigabytes": ("data", "bytes"),
    "megabytes": ("data", "bytes"),
    "gigabits": ("data", "bytes"),
    "usec": ("time", "s"),
    "msec": ("time", "s"),
    "to_msec": ("time", "ms"),
    "joules_to_kj": ("energy", "kj"),
    "joules_to_uj": ("energy", "uj"),
    "transmission_time": ("time", "s"),
}


def unit_of_name(identifier: str) -> Optional[Tuple[str, str]]:
    """The (dimension, scale) an identifier's suffix declares, if any."""
    lowered = identifier.lower()
    for suffix in _ORDERED_SUFFIXES:
        if lowered.endswith("_" + suffix):
            return UNIT_SUFFIXES[suffix]
    return None


def unit_of_expr(node: ast.AST) -> Optional[Tuple[str, str]]:
    """Unit of an expression, when statically evident."""
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr)
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee is not None:
            return HELPER_RETURNS.get(callee.split(".")[-1])
    return None


def _describe(unit: Tuple[str, str]) -> str:
    return f"{unit[0]} [{unit[1]}]"


class UnitSuffixMismatch(Rule):
    """Add/Sub/Compare over identifiers with conflicting unit suffixes."""

    name = "units-suffix-mismatch"
    family = "units"
    description = (
        "arithmetic or comparison mixes identifiers whose unit suffixes "
        "disagree (e.g. duration_s + delay_ms, rate_gbps < rate_bps)"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs = [(node.left, node.right)]
            elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                pairs = [(node.left, node.comparators[0])]
            else:
                continue
            for left, right in pairs:
                lu = unit_of_expr(left)
                ru = unit_of_expr(right)
                if lu is None or ru is None or lu == ru:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"mixes {_describe(lu)} with {_describe(ru)} in "
                    f"`{module.segment(node)}`; convert one side explicitly",
                )


#: parameter/target names that legitimately hold dimensionless epsilons
_TOLERANCE_NAME = re.compile(
    r"^(tol|rtol|atol|abs_tol|rel_tol|eps|epsilon|tolerance)$|(_tol|_eps)$",
    re.IGNORECASE,
)

#: callables whose arguments are tolerances by construction
_TOLERANCE_CALL = re.compile(r"(^|_)(isclose|close|approx)$")

_EXPONENT_LITERAL = re.compile(r"^\d+(\.\d*)?[eE][-+]?\d+$")


class RawExponentLiteral(Rule):
    """Raw ``1e9``-style magnitudes outside ``units.py``.

    Large exponent literals (≥ 1e3) and ``1000**k``/``1024**k`` powers
    are always flagged — write ``gbps(10)``, ``units.MB`` and friends
    instead. Small literals (< 1) are flagged only outside *tolerance
    contexts*: comparison subtrees, defaults/assignments for
    tolerance-named variables (``tol``, ``eps``, …), and arguments to
    ``isclose``/``approx``-style callables, so numeric epsilons stay
    idiomatic while unit conversions (``interval = 1e-3``) do not.
    """

    name = "units-raw-literal"
    family = "units"
    description = (
        "raw exponent literal (1e9, 1024**3) outside units.py; use the "
        "named helpers/constants from repro.units"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if module.filename == "units.py":
            return
        tolerant = self._tolerance_nodes(module)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Pow)
                and isinstance(node.left, ast.Constant)
                and node.left.value in (1000, 1024)
                and isinstance(node.right, ast.Constant)
            ):
                yield self.finding(
                    module,
                    node,
                    f"raw power literal `{module.segment(node)}`; use a "
                    f"named constant from repro.units",
                )
                continue
            if not isinstance(node, ast.Constant):
                continue
            if not isinstance(node.value, (int, float)) or isinstance(
                node.value, bool
            ):
                continue
            text = module.segment(node)
            if not _EXPONENT_LITERAL.match(text):
                continue
            magnitude = abs(float(node.value))
            if magnitude >= 1e3:
                yield self.finding(
                    module,
                    node,
                    f"raw exponent literal {text}; use a repro.units "
                    f"helper (gbps/mbps/MILLION/...) so the magnitude is named",
                )
            elif magnitude < 1.0 and node not in tolerant:
                yield self.finding(
                    module,
                    node,
                    f"raw exponent literal {text} outside a tolerance "
                    f"context; use usec()/msec()/MICROJOULE from repro.units",
                )

    def _tolerance_nodes(self, module: ModuleInfo) -> Set[ast.AST]:
        """All AST nodes inside a recognized tolerance context."""
        roots: List[ast.AST] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                roots.append(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                positional = args.posonlyargs + args.args
                for param, default in zip(
                    positional[len(positional) - len(args.defaults):],
                    args.defaults,
                ):
                    if _TOLERANCE_NAME.search(param.arg):
                        roots.append(default)
                for param, default in zip(args.kwonlyargs, args.kw_defaults):
                    if default is not None and _TOLERANCE_NAME.search(param.arg):
                        roots.append(default)
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and _TOLERANCE_NAME.search(t.id)
                    for t in node.targets
                ):
                    roots.append(node.value)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.value is not None
                    and _TOLERANCE_NAME.search(node.target.id)
                ):
                    roots.append(node.value)
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee is not None and _TOLERANCE_CALL.search(
                    callee.split(".")[-1]
                ):
                    roots.extend(node.args)
                    roots.extend(kw.value for kw in node.keywords)
                for kw in node.keywords:
                    if kw.arg is not None and _TOLERANCE_NAME.search(kw.arg):
                        roots.append(kw.value)
        allowed: Set[ast.AST] = set()
        for root in roots:
            allowed.update(ast.walk(root))
        return allowed


class CallUnitMismatch(Rule):
    """Arguments whose unit suffix conflicts with the parameter's."""

    name = "units-call-mismatch"
    family = "units"
    description = (
        "call passes a value whose unit suffix conflicts with the "
        "parameter name (e.g. f(rate_bps=link_gbps))"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                yield from self._compare(module, node, kw.arg, kw.value)
            if isinstance(node.func, ast.Name) and not any(
                isinstance(arg, ast.Starred) for arg in node.args
            ):
                params = ctx.signatures.get(node.func.id)
                if params:
                    for param, arg in zip(params, node.args):
                        yield from self._compare(module, node, param, arg)

    def _compare(
        self, module: ModuleInfo, call: ast.Call, param: str, arg: ast.AST
    ) -> Iterator[Finding]:
        param_unit = unit_of_name(param)
        arg_unit = unit_of_expr(arg)
        if param_unit is None or arg_unit is None or param_unit == arg_unit:
            return
        yield self.finding(
            module,
            call,
            f"argument `{module.segment(arg)}` carries "
            f"{_describe(arg_unit)} but parameter `{param}` expects "
            f"{_describe(param_unit)}",
        )


UNITS_RULES = [UnitSuffixMismatch(), RawExponentLiteral(), CallUnitMismatch()]
