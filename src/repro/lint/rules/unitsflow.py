"""Units-flow family: dimensional analysis across assignments and calls.

The per-file ``units`` family compares *suffixes that are both visible
in one expression* (``duration_s + delay_ms``). It cannot see that an
unsuffixed temporary holds watts, or that a helper two modules away
returns joules. These rules propagate units through the
:class:`~repro.lint.dataflow.UnitFlow` engine — local assignments,
function return summaries (to a call-graph fixpoint), and resolved call
arguments — using the same ``units.py`` suffix table and helper-return
anchors as the per-file family, so the two families agree on what a
unit *is* and differ only in how far they can see.

Overlap discipline: each rule skips exactly the cases the per-file
family already reports, so one bug yields one finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.core import Finding, LintContext, ModuleInfo, Rule, dotted_name
from repro.lint.dataflow import UnitFlow
from repro.lint.graph import FunctionInfo, call_params
from repro.lint.rules.units import unit_of_expr, unit_of_name

Unit = Tuple[str, str]


def _flow(ctx: LintContext) -> UnitFlow:
    return ctx.memo(
        "unitsflow.engine",
        lambda: UnitFlow(
            ctx.graph, unit_of_name=unit_of_name, unit_of_expr=unit_of_expr
        ),
    )


def _describe(unit: Unit) -> str:
    return f"{unit[0]} [{unit[1]}]"


def _enclosing(
    module: ModuleInfo, ctx: LintContext, node: ast.AST
) -> Optional[FunctionInfo]:
    qual = ctx.graph.function_at(module, node)
    if qual is None:
        return None
    return ctx.graph.functions.get(qual)


def _value_unit(
    module: ModuleInfo, ctx: LintContext, node: ast.AST, value: ast.AST
) -> Optional[Unit]:
    """Unit of ``value`` with flow context from its enclosing function."""
    flow = _flow(ctx)
    func = _enclosing(module, ctx, node)
    if func is None:
        return flow.unit_of(value, {}, None)
    return flow.unit_of(value, flow.env_of(func.qualname), func)


class AssignUnitMismatch(Rule):
    """Assignment stores a value of one unit into a name declaring another."""

    name = "unitsflow-assign"
    family = "units-flow"
    description = (
        "assignment target's unit suffix conflicts with the inferred unit "
        "of the right-hand side (tracked through locals and helper returns)"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if module.filename == "units.py":
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                pairs = [(target, node.value) for target in node.targets]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                pairs = [(node.target, node.value)]
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs = [(node.target, node.value)]
            else:
                continue
            for target, value in pairs:
                declared = self._target_unit(target)
                if declared is None:
                    continue
                inferred = _value_unit(module, ctx, node, value)
                if inferred is None or inferred == declared:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"`{module.segment(target)}` declares "
                    f"{_describe(declared)} but the assigned value carries "
                    f"{_describe(inferred)}; convert explicitly",
                )

    @staticmethod
    def _target_unit(target: ast.AST) -> Optional[Unit]:
        if isinstance(target, ast.Name):
            return unit_of_name(target.id)
        if isinstance(target, ast.Attribute):
            return unit_of_name(target.attr)
        return None


class ReturnUnitMismatch(Rule):
    """A unit-suffixed function returns a value of a different unit."""

    name = "unitsflow-return"
    family = "units-flow"
    description = (
        "function whose name declares a unit suffix returns a value whose "
        "inferred unit disagrees"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if module.filename == "units.py":
            return
        flow = _flow(ctx)
        for qual, func in sorted(ctx.graph.functions.items()):
            if func.module is not module:
                continue
            declared = unit_of_name(func.name)
            if declared is None:
                continue
            env = flow.env_of(qual)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                inferred = flow.unit_of(node.value, env, func)
                if inferred is None or inferred == declared:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"`{func.name}` declares {_describe(declared)} but this "
                    f"return carries {_describe(inferred)}; convert before "
                    f"returning",
                )


class CallUnitFlowMismatch(Rule):
    """Call argument's *inferred* unit conflicts with the parameter suffix.

    Extends the per-file ``units-call-mismatch`` in two directions the
    suffix-only check cannot take: arguments whose unit is known only
    through dataflow (an unsuffixed local, a helper's return), and
    callees resolved through the call graph (methods, imported
    functions) rather than the bare-name signature table.
    """

    name = "unitsflow-call"
    family = "units-flow"
    description = (
        "call passes a value whose dataflow-inferred unit conflicts with "
        "the parameter's unit suffix (resolved through the call graph)"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if module.filename == "units.py":
            return
        flow = _flow(ctx)
        for qual, func in sorted(ctx.graph.functions.items()):
            if func.module is not module:
                continue
            env = flow.env_of(qual)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_call(module, ctx, flow, func, env, node)

    def _check_call(
        self,
        module: ModuleInfo,
        ctx: LintContext,
        flow: UnitFlow,
        func: FunctionInfo,
        env,
        call: ast.Call,
    ) -> Iterator[Finding]:
        callees, _ = ctx.graph.resolve_call(func, call)
        seen = set()
        for callee_qual in sorted(callees):
            callee = ctx.graph.functions.get(callee_qual)
            if callee is None:
                continue
            params = call_params(callee, call)
            args = list(zip(params, call.args)) + [
                (kw.arg, kw.value)
                for kw in call.keywords
                if kw.arg is not None and kw.arg in params
            ]
            for param, arg in args:
                declared = unit_of_name(param)
                if declared is None:
                    continue
                if self._per_file_covers(ctx, call, arg):
                    continue
                inferred = flow.unit_of(arg, env, func)
                if inferred is None or inferred == declared:
                    continue
                key = (param, arg)
                if key in seen:
                    continue  # conservative resolution: report once
                seen.add(key)
                yield self.finding(
                    module,
                    call,
                    f"argument `{module.segment(arg)}` carries "
                    f"{_describe(inferred)} (inferred through dataflow) but "
                    f"parameter `{param}` of `{callee.name}` expects "
                    f"{_describe(declared)}",
                )

    @staticmethod
    def _per_file_covers(
        ctx: LintContext, call: ast.Call, arg: ast.AST
    ) -> bool:
        """Whether ``units-call-mismatch`` already reports this pair."""
        if unit_of_expr(arg) is None:
            return False  # suffix-blind argument: only dataflow sees it
        for kw in call.keywords:
            if kw.value is arg and kw.arg is not None:
                return True  # keyword + suffixed value: per-file territory
        callee = dotted_name(call.func)
        return (
            isinstance(call.func, ast.Name)
            and callee is not None
            and bool(ctx.signatures.get(callee))
        )


UNITSFLOW_RULES = [
    AssignUnitMismatch(),
    CallUnitFlowMismatch(),
    ReturnUnitMismatch(),
]
