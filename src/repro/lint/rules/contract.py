"""CCA-contract family: the plug-in surface every algorithm must honor.

``repro.cc`` mirrors the kernel's pluggable congestion-control table:
experiments select algorithms by registry *name*, the sender drives them
exclusively through the :class:`~repro.cc.base.CongestionControl` hooks,
and ``cwnd`` is a byte count that the clamp helpers keep positive. A
subclass that forgets any leg of that contract fails silently — it runs,
but the grid experiments never exercise it, or it crashes only under the
loss pattern that makes ``cwnd`` negative. These rules check, for every
``CongestionControl`` subclass defined under a ``cc/`` directory (the
hierarchy is resolved across modules, so ``Bbr2(Bbr)`` counts):

* the class body binds ``name`` (the registry key),
* the class is referenced from the sibling ``cc/registry.py``,
* ``on_ack`` is overridden somewhere below the base class, and
* no assignment ``...cwnd = -<expr>`` stores a bare negative window.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintContext, ModuleInfo, Rule

BASE_CLASS = "CongestionControl"


def _cca_class_defs(module: ModuleInfo, ctx: LintContext) -> Iterator[ast.ClassDef]:
    """Concrete CCA subclasses defined in this ``cc/`` module."""
    if not module.in_directory("cc"):
        return
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef) or node.name == BASE_CLASS:
            continue
        lineage = ctx.cca_lineage(module, node.name)
        if not lineage:
            continue
        # the chain must end at (a class whose bases include) the base
        if any(BASE_CLASS in facts.bases for facts in lineage):
            yield node


class CcaMissingName(Rule):
    """Subclass does not bind the ``name`` registry key."""

    name = "cca-missing-name"
    family = "cca-contract"
    description = (
        "CongestionControl subclass must set the `name` ClassVar (its "
        "registry key)"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in _cca_class_defs(module, ctx):
            facts = ctx.cc_classes["/".join(module.parts[:-1])][node.name]
            if "name" not in facts.assigned_names:
                yield self.finding(
                    module,
                    node,
                    f"{node.name} does not set `name`; experiments select "
                    f"CCAs by registry name",
                )


class CcaUnregistered(Rule):
    """Subclass never referenced from the sibling ``registry.py``."""

    name = "cca-unregistered"
    family = "cca-contract"
    description = (
        "CongestionControl subclass is not referenced from cc/registry.py, "
        "so no experiment can select it"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if module.filename == "registry.py":
            return
        registered = ctx.registry_names.get("/".join(module.parts[:-1]))
        if registered is None:
            return  # no registry module in this directory's file set
        for node in _cca_class_defs(module, ctx):
            if node.name not in registered:
                yield self.finding(
                    module,
                    node,
                    f"{node.name} is never referenced from registry.py; "
                    f"register() it so the grid experiments can run it",
                )


class CcaOverrideOnAck(Rule):
    """Neither the subclass nor an intermediate ancestor defines on_ack."""

    name = "cca-override-on-ack"
    family = "cca-contract"
    description = (
        "CongestionControl subclass must override on_ack (directly or via "
        "an ancestor below the base class)"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in _cca_class_defs(module, ctx):
            lineage = ctx.cca_lineage(module, node.name)
            overridden = any(
                "on_ack" in facts.methods
                for facts in lineage
                if facts.name != BASE_CLASS
            )
            if not overridden:
                yield self.finding(
                    module,
                    node,
                    f"{node.name} inherits the base-class on_ack; override "
                    f"it (or suppress if the default is the algorithm)",
                )


class CcaNegativeCwnd(Rule):
    """Assignment of a bare negative expression to ``cwnd``."""

    name = "cca-negative-cwnd"
    family = "cca-contract"
    description = (
        "assigning a bare negative expression to cwnd; clamp to the "
        "minimum window instead"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if not module.in_directory("cc"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            hits_cwnd = any(
                (isinstance(t, ast.Attribute) and t.attr == "cwnd")
                or (isinstance(t, ast.Name) and t.id == "cwnd")
                for t in targets
            )
            if not hits_cwnd:
                continue
            if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
                yield self.finding(
                    module,
                    node,
                    f"`{module.segment(node)}` stores a negative window; "
                    f"cwnd is a byte count — clamp via max(min_cwnd, ...)",
                )


CONTRACT_RULES = [
    CcaMissingName(),
    CcaUnregistered(),
    CcaOverrideOnAck(),
    CcaNegativeCwnd(),
]
