"""Determinism family: every run must be replayable from its seed.

The paper's methodology repeats every scenario and reports standard
deviations; the reproduction additionally promises bit-identical reruns
given the same ``--seed``. That only holds if *all* entropy flows
through :class:`repro.sim.rng.RngRegistry` streams and no code reads
wall clocks or kernel entropy. These rules ban the escape hatches:

* ``import random`` anywhere but ``sim/rng.py`` (type-only imports
  under ``if TYPE_CHECKING:`` are allowed — accepting a
  ``random.Random`` stream as a parameter is the blessed pattern),
* the module-level global RNG (``random.random()`` et al.), which is
  process-wide state even when the import is legal,
* wall-clock reads (``time.time``, ``datetime.now``) — simulators must
  use virtual time,
* OS entropy (``os.urandom``, ``uuid.uuid4``, ``secrets``),
* process/thread identity (``os.getpid``, ``threading.get_ident``):
  with the executor layer fanning work across processes, a pid leaking
  into a cache key or a worker's seed derivation would silently make
  results depend on which worker ran what, and
* iteration over unordered ``set`` values in the simulator packages
  (``sim/``, ``net/``, ``cc/``, ``tcp/``), where hash-order dependence
  silently reorders event processing between interpreter runs, and
* imports of the observability layer (``repro.obs``) from those same
  simulator packages: observers are write-only diagnostics, and a
  simulator that *reads* tracing state (is tracing on? what did the
  journal say?) gains a hidden input that differs between traced and
  untraced runs, and
* wall clocks around telemetry probe sinks: sample timestamps must be
  virtual time (``sim.now``), never ``wall_clock()``/``perf_clock()``/
  ``time.*`` — telemetry files are diffed across runs and machines.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, LintContext, ModuleInfo, Rule, dotted_name

#: directories whose iteration order feeds the event loop
SIM_DIRECTORIES = ("sim", "net", "cc", "tcp")

#: attribute reads on the ``random`` module that use the global RNG
GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "expovariate", "gauss", "normalvariate",
        "lognormvariate", "betavariate", "paretovariate", "triangular",
        "vonmisesvariate", "weibullvariate", "getrandbits", "randbytes",
        "seed",
    }
)

WALL_CLOCK_FUNCTIONS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "now", "utcnow", "today",
    }
)

#: (module, attribute) reads that identify the running process/thread
PROCESS_IDENTITY_FUNCTIONS = {
    "os": frozenset({"getpid", "getppid"}),
    "multiprocessing": frozenset({"current_process", "parent_process"}),
    "threading": frozenset({"get_ident", "get_native_id", "current_thread"}),
}


def _is_rng_module(module: ModuleInfo) -> bool:
    return module.display_path.endswith("sim/rng.py")


def _in_type_checking_block(module: ModuleInfo, node: ast.AST) -> bool:
    """Whether ``node`` sits under ``if TYPE_CHECKING:``."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.If):
            test = dotted_name(ancestor.test)
            if test in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
                return True
    return False


class ImportRandom(Rule):
    """``import random`` outside ``sim/rng.py``."""

    name = "det-import-random"
    family = "determinism"
    description = (
        "`import random` outside sim/rng.py; draw from a seeded "
        "RngRegistry stream (type-only imports under TYPE_CHECKING are ok)"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if _is_rng_module(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                hit = any(alias.name == "random" for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                hit = node.module == "random"
            else:
                continue
            if hit and not _in_type_checking_block(module, node):
                yield self.finding(
                    module,
                    node,
                    "import of `random` outside sim/rng.py; accept a "
                    "stream from RngRegistry instead (move the import "
                    "under `if TYPE_CHECKING:` if it is annotation-only)",
                )


class GlobalRng(Rule):
    """Calls to the process-wide global RNG (``random.random()`` etc.)."""

    name = "det-global-rng"
    family = "determinism"
    description = (
        "call to the module-level global RNG (random.random, "
        "random.choice, ...); use a named RngRegistry stream"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            parts = callee.split(".")
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in GLOBAL_RNG_FUNCTIONS
            ):
                yield self.finding(
                    module,
                    node,
                    f"`{callee}()` draws from the shared global RNG; use "
                    f"a seeded RngRegistry stream",
                )


class WallClock(Rule):
    """Wall-clock reads; simulator code must use virtual time."""

    name = "det-wall-clock"
    family = "determinism"
    description = (
        "wall-clock read (time.time(), datetime.now(), ...); use the "
        "simulator's virtual clock"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in WALL_CLOCK_FUNCTIONS:
                        yield self.finding(
                            module,
                            node,
                            f"import of wall-clock `time.{alias.name}`; "
                            f"use the simulator's virtual clock",
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            parts = callee.split(".")
            if parts[0] in ("time", "datetime") and parts[-1] in (
                WALL_CLOCK_FUNCTIONS
            ):
                yield self.finding(
                    module,
                    node,
                    f"`{callee}()` reads the wall clock; experiments must "
                    f"be a pure function of their seed",
                )


class OsEntropy(Rule):
    """Kernel entropy sources (``os.urandom``, ``uuid.uuid4``, secrets)."""

    name = "det-entropy"
    family = "determinism"
    description = (
        "OS entropy source (os.urandom, uuid.uuid4, secrets.*); derive "
        "ids/draws from the master seed instead"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            parts = callee.split(".")
            entropic = (
                (parts[0] == "os" and parts[-1] == "urandom")
                or (parts[0] == "uuid" and parts[-1] in ("uuid1", "uuid4"))
                or parts[0] == "secrets"
            )
            if entropic:
                yield self.finding(
                    module,
                    node,
                    f"`{callee}()` is non-deterministic OS entropy; derive "
                    f"from RngRegistry (hash the master seed and a name)",
                )


class ProcessIdentity(Rule):
    """Process/thread identity reads (``os.getpid`` and friends).

    Work items fan out across worker processes; replayability then
    demands that nothing a worker computes depends on *which* worker it
    is. A pid or thread id leaking into a cache key, a seed derivation,
    or a scenario name silently breaks the jobs=1 == jobs=N guarantee.
    """

    name = "det-process-identity"
    family = "determinism"
    description = (
        "process/thread identity read (os.getpid, threading.get_ident, "
        "...); results must not depend on which worker ran them — derive "
        "cache keys and seeds from scenario + seed only"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                banned = PROCESS_IDENTITY_FUNCTIONS.get(node.module or "")
                if not banned:
                    continue
                for alias in node.names:
                    if alias.name in banned:
                        yield self.finding(
                            module,
                            node,
                            f"import of `{node.module}.{alias.name}`; "
                            f"worker identity must not influence results",
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            parts = callee.split(".")
            if len(parts) < 2:
                continue
            banned = PROCESS_IDENTITY_FUNCTIONS.get(parts[0])
            if banned and parts[-1] in banned:
                yield self.finding(
                    module,
                    node,
                    f"`{callee}()` identifies the running process/thread; "
                    f"cache keys and seeds must derive from the scenario "
                    f"spec and base seed only",
                )


def _is_set_expr(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it is an unordered set expression."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return f"a `{node.func.id}(...)` value"
    return None


class SetIteration(Rule):
    """Iteration over unordered sets inside the simulator packages."""

    name = "det-set-iteration"
    family = "determinism"
    description = (
        "iterating an unordered set in sim/net/cc/tcp; hash order varies "
        "across runs — sort it or use a list/dict"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if not any(module.in_directory(d) for d in SIM_DIRECTORIES):
            return
        for node in ast.walk(module.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                # list(set(...)) / tuple(set(...)) launder hash order into
                # an innocently ordered-looking sequence.
                if node.func.id in ("list", "tuple") and node.args:
                    iters.append(node.args[0])
            for candidate in iters:
                described = _is_set_expr(candidate)
                if described is not None:
                    yield self.finding(
                        module,
                        node,
                        f"iterates {described}; set order depends on hash "
                        f"seeds — use sorted(...) or an ordered container",
                    )


class ObsFeedback(Rule):
    """Imports of ``repro.obs`` inside the simulator packages.

    The observability layer is strictly one-way: the harness *writes*
    events and metrics about the simulation, and nothing in the
    simulation ever reads them back. An ``import repro.obs`` inside
    ``sim/``, ``net/``, ``cc/`` or ``tcp/`` is the first step of a
    feedback loop — behaviour that depends on whether tracing is on, a
    direction the jobs=1 == jobs=N and traced == untraced guarantees
    cannot survive.
    """

    name = "obs-no-feedback"
    family = "determinism"
    description = (
        "simulator package importing repro.obs; observability is "
        "write-only — sim/net/cc/tcp must not read tracing state"
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if not any(module.in_directory(d) for d in SIM_DIRECTORIES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                hit = any(
                    alias.name == "repro.obs"
                    or alias.name.startswith("repro.obs.")
                    for alias in node.names
                )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                hit = mod == "repro.obs" or mod.startswith("repro.obs.")
            else:
                continue
            if hit:
                yield self.finding(
                    module,
                    node,
                    "simulator code importing `repro.obs`; observers only "
                    "ever receive copies of simulation state — keep the "
                    "dependency pointing from the harness to obs, never "
                    "from the simulation",
                )


#: the obs-side halves of the profiling channel; their sim-facing
#: protocol lives in repro.sim.profile instead
PROFILING_OBS_MODULES = ("repro.obs.profile", "repro.obs.attrib")


class ObsProfileSimImport(Rule):
    """Imports of the profiling/attribution collectors inside the sim.

    The hot-path profiler is the one obs feature that reaches *into*
    the event loop, which makes this the easiest place to re-create the
    feedback loop ``obs-no-feedback`` exists to prevent: an
    instrumented component importing the collector (or the attribution
    ledger) directly instead of talking to the neutral
    :mod:`repro.sim.profile` protocol. This rule names that exact
    mistake and its fix — the generic rule also fires, but points at
    the wrong remedy (dropping obs altogether) for profiling code.
    """

    name = "obs-profile-no-sim-import"
    family = "determinism"
    description = (
        "simulator package importing repro.obs.profile/attrib; hot "
        "paths talk to the write-only repro.sim.profile protocol, "
        "never to the obs-side collector or ledger"
    )

    @staticmethod
    def _is_profiling(name: str) -> bool:
        return any(
            name == mod or name.startswith(mod + ".")
            for mod in PROFILING_OBS_MODULES
        )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        if not any(module.in_directory(d) for d in SIM_DIRECTORIES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                hits = [
                    alias.name
                    for alias in node.names
                    if self._is_profiling(alias.name)
                ]
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if self._is_profiling(mod):
                    hits = [mod]
                elif mod == "repro.obs":
                    # from repro.obs import profile / attrib
                    hits = [
                        f"repro.obs.{alias.name}"
                        for alias in node.names
                        if self._is_profiling(f"repro.obs.{alias.name}")
                    ]
                else:
                    hits = []
            else:
                continue
            for name in hits:
                yield self.finding(
                    module,
                    node,
                    f"simulator code importing `{name}`; instrument "
                    f"against the repro.sim.profile protocol "
                    f"(HotPathProfiler) and let the harness install the "
                    f"obs-side collector",
                )


#: the journal's blessed wall-clock helpers — legal for diagnostics,
#: never for telemetry sample timestamps
PROBE_CLOCK_HELPERS = frozenset({"wall_clock", "perf_clock"})


class ProbeWallClock(Rule):
    """Wall-clock use around telemetry probe sinks.

    Probe sinks record the *simulation's* trajectories, so samples must
    be stamped with virtual time — a wall-clock timestamp would make
    telemetry files differ between reruns and machines, breaking the
    traced == untraced and cross-run diffing guarantees. ``det-wall-
    clock`` already bans raw ``time.*`` reads everywhere; this rule
    closes the remaining hole: the journal's *blessed* diagnostics
    helpers (``wall_clock``/``perf_clock``) leaking into a module that
    defines a sink, or any ``sample(...)`` call stamped with a clock
    read instead of ``sim.now``.
    """

    name = "obs-probe-wall-clock"
    family = "determinism"
    description = (
        "wall clock near a telemetry probe sink; samples must be "
        "stamped with virtual time (sim.now), never wall_clock()/"
        "perf_clock()/time.*"
    )

    @staticmethod
    def _defines_probe_sink(module: ModuleInfo) -> bool:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.endswith("ProbeSink"):
                return True
            for base in node.bases:
                base_name = dotted_name(base)
                if base_name and base_name.split(".")[-1].endswith("ProbeSink"):
                    return True
        return False

    @staticmethod
    def _clock_call(node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        callee = dotted_name(node.func)
        if callee is None:
            return None
        parts = callee.split(".")
        if parts[-1] in PROBE_CLOCK_HELPERS:
            return callee
        if parts[0] in ("time", "datetime") and parts[-1] in WALL_CLOCK_FUNCTIONS:
            return callee
        return None

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterator[Finding]:
        defines_sink = self._defines_probe_sink(module)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sample"
                and node.args
            ):
                clock = self._clock_call(node.args[0])
                if clock is not None:
                    yield self.finding(
                        module,
                        node,
                        f"`sample(...)` stamped with `{clock}()`; telemetry "
                        f"samples must carry virtual time (sim.now)",
                    )
                    continue
            if not defines_sink:
                continue
            if isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod in ("repro.obs", "repro.obs.journal"):
                    for alias in node.names:
                        if alias.name in PROBE_CLOCK_HELPERS:
                            yield self.finding(
                                module,
                                node,
                                f"probe-sink module importing "
                                f"`{alias.name}`; the journal's wall-clock "
                                f"helpers are for diagnostics, not "
                                f"telemetry timestamps",
                            )


DETERMINISM_RULES = [
    ImportRandom(),
    GlobalRng(),
    WallClock(),
    OsEntropy(),
    ProcessIdentity(),
    SetIteration(),
    ObsFeedback(),
    ObsProfileSimImport(),
    ProbeWallClock(),
]
