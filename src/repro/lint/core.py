"""Data model shared by the simlint engine and its rules.

A :class:`ModuleInfo` is one parsed source file plus everything a rule
needs to inspect it cheaply: the AST, a parent map (stdlib ``ast`` has
no parent pointers), per-line suppression sets, and source segments.
Rules are tiny classes producing :class:`Finding` values; the engine in
:mod:`repro.lint.engine` owns file discovery and cross-module context.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

#: a ``simlint: ignore[rule-a,rule-b]`` comment suppresses those rules
#: on the line; a bare ``simlint: ignore`` suppresses every rule there.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?"
)

#: wildcard stored for blanket suppressions
SUPPRESS_ALL = "*"


class LintUsageError(Exception):
    """Invalid invocation (unknown rule, missing path); CLI exit code 2."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    family: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-reporter representation (stable schema, version 1)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "family": self.family,
            "message": self.message,
        }


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule names suppressed there."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = frozenset((SUPPRESS_ALL,))
        else:
            suppressions[lineno] = frozenset(
                name.strip() for name in rules.split(",") if name.strip()
            )
    return suppressions


@dataclass
class ModuleInfo:
    """One parsed source file, ready for rules to inspect."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(default=None, repr=False)

    @classmethod
    def parse(cls, path: Path, display_path: str) -> "ModuleInfo":
        """Read and parse ``path``; raises ``SyntaxError`` on bad source."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            display_path=display_path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )

    # -- path helpers ------------------------------------------------------

    @property
    def parts(self) -> Tuple[str, ...]:
        """Posix components of the display path (for scope decisions)."""
        return tuple(self.display_path.split("/"))

    @property
    def filename(self) -> str:
        return self.parts[-1]

    def in_directory(self, name: str) -> bool:
        """Whether any directory component equals ``name``."""
        return name in self.parts[:-1]

    # -- AST helpers -------------------------------------------------------

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` ('' when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""

    # -- suppression -------------------------------------------------------

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed on ``line`` by a simlint comment."""
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return SUPPRESS_ALL in rules or rule in rules


class Rule:
    """Base class for simlint rules.

    Subclasses set ``name``/``family``/``description`` and implement
    :meth:`check`, yielding findings (suppression filtering happens in
    the engine, so rules stay oblivious to comments).
    """

    name: str = ""
    family: str = ""
    description: str = ""

    def check(self, module: ModuleInfo, ctx: "LintContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            family=self.family,
            message=message,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to a string, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


class LintContext:
    """Cross-module state shared by all rules in one lint run.

    Built once per run from the full module set so rules can answer
    questions a single file cannot: which identifiers ``cc/registry.py``
    references, the CCA class hierarchy across ``cc/`` modules, and the
    parameter names of module-level functions (for positional-argument
    unit checks).
    """

    def __init__(self, modules: List[ModuleInfo]):
        self.modules = modules
        self._signatures: Optional[Dict[str, Optional[List[str]]]] = None
        self._registry_names: Optional[Dict[str, FrozenSet[str]]] = None
        self._cc_classes: Optional[Dict[str, Dict[str, "ClassFacts"]]] = None
        self._graph = None
        self._memo: Dict[str, object] = {}

    # -- whole-program graph ------------------------------------------------

    @property
    def graph(self):
        """The :class:`~repro.lint.graph.ProjectGraph` over all modules.

        Built lazily on first access (only the whole-program rule
        families pay for it) and shared by every rule in the run.
        """
        if self._graph is None:
            from repro.lint.graph import ProjectGraph  # avoid import cycle

            self._graph = ProjectGraph(self.modules)
        return self._graph

    def memo(self, key: str, factory):
        """Run-scoped cache for expensive analyses.

        The dataflow engines (taint fixpoint, unit inference) are built
        once per lint run and shared across all modules; rules call
        ``ctx.memo("detflow", lambda: ...)`` instead of owning state,
        keeping rule instances reusable across runs.
        """
        if key not in self._memo:
            self._memo[key] = factory()
        return self._memo[key]

    # -- function signature table -----------------------------------------

    @property
    def signatures(self) -> Dict[str, Optional[List[str]]]:
        """Bare name -> positional parameter names; ``None`` if ambiguous
        (defined with different signatures in multiple modules)."""
        if self._signatures is None:
            table: Dict[str, Optional[List[str]]] = {}
            for module in self.modules:
                for node in module.tree.body:
                    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    params = [a.arg for a in node.args.posonlyargs + node.args.args]
                    if node.name in table and table[node.name] != params:
                        table[node.name] = None
                    else:
                        table[node.name] = params
            self._signatures = table
        return self._signatures

    # -- cc registry -------------------------------------------------------

    def _cc_dir_key(self, module: ModuleInfo) -> str:
        return "/".join(module.parts[:-1])

    @property
    def registry_names(self) -> Dict[str, FrozenSet[str]]:
        """Per-directory set of identifiers referenced in ``registry.py``."""
        if self._registry_names is None:
            table: Dict[str, FrozenSet[str]] = {}
            for module in self.modules:
                if module.filename != "registry.py":
                    continue
                names = set()
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
                    elif isinstance(node, ast.ImportFrom):
                        for alias in node.names:
                            names.add(alias.asname or alias.name)
                table[self._cc_dir_key(module)] = frozenset(names)
            self._registry_names = table
        return self._registry_names

    # -- cc class graph ----------------------------------------------------

    @property
    def cc_classes(self) -> Dict[str, Dict[str, "ClassFacts"]]:
        """Per-``cc``-directory map of class name -> :class:`ClassFacts`."""
        if self._cc_classes is None:
            table: Dict[str, Dict[str, ClassFacts]] = {}
            for module in self.modules:
                if not module.in_directory("cc"):
                    continue
                per_dir = table.setdefault(self._cc_dir_key(module), {})
                for node in module.tree.body:
                    if isinstance(node, ast.ClassDef):
                        per_dir[node.name] = ClassFacts.from_node(node)
            self._cc_classes = table
        return self._cc_classes

    def cca_lineage(self, module: ModuleInfo, class_name: str) -> List["ClassFacts"]:
        """The class plus its in-package ancestors, root-last.

        Follows base-class names through the per-directory class table;
        external bases (not defined in the analyzed ``cc/`` modules) end
        the chain.
        """
        per_dir = self.cc_classes.get(self._cc_dir_key(module), {})
        lineage: List[ClassFacts] = []
        seen = set()
        name: Optional[str] = class_name
        while name is not None and name in per_dir and name not in seen:
            seen.add(name)
            facts = per_dir[name]
            lineage.append(facts)
            name = next(
                (base for base in facts.bases if base in per_dir), facts.bases[0]
            ) if facts.bases else None
        return lineage


@dataclass
class ClassFacts:
    """What the contract rules need to know about one class body."""

    name: str
    bases: List[str]
    assigned_names: FrozenSet[str]
    methods: FrozenSet[str]

    @classmethod
    def from_node(cls, node: ast.ClassDef) -> "ClassFacts":
        bases = []
        for base in node.bases:
            flat = dotted_name(base)
            if flat is not None:
                bases.append(flat.split(".")[-1])
        assigned = set()
        methods = set()
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assigned.add(target.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    assigned.add(stmt.target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.add(stmt.name)
        return cls(
            name=node.name,
            bases=bases,
            assigned_names=frozenset(assigned),
            methods=frozenset(methods),
        )
