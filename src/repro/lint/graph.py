"""Whole-program substrate: import graph, symbol table, call graph.

Per-file AST rules cannot see across module boundaries: that an RNG
value reaches a simulation decision through a helper two calls away, or
that the event loop transitively executes an allocation-heavy method.
This module builds the project-wide structures those questions need,
from the same :class:`~repro.lint.core.ModuleInfo` set the engine
already parses:

* a **module key** per file (``src/repro/sim/engine.py`` →
  ``repro.sim.engine``) and an **import graph** over the analyzed set,
* a **symbol table** of every function, method and class with stable
  qualified names (``repro.sim.engine.Simulator.run``),
* a **call graph** resolved conservatively: ``self.method()`` through
  the class hierarchy, ``name()`` through imports and module scope,
  ``obj.method()`` to *every* analyzed method of that name (an
  over-approximation — for reachability questions, false edges are
  safe, missing edges are not), attribute loads to matching
  ``@property`` methods, and ``Class(...)`` to ``__init__`` plus an
  instantiation record (what the ``perf-missing-slots`` rule consumes),
* **reachability** (BFS) from a set of root functions — how the perf
  family decides "hot" without hardcoding file lists.

Everything is computed lazily and cached on the
:class:`~repro.lint.core.LintContext` for the duration of one run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.core import ModuleInfo, dotted_name

#: prefixes stripped from display paths when deriving module keys;
#: layout directories, not package names
_LAYOUT_DIRS = ("src",)

#: method names that enqueue a callback onto the event loop; function
#: references passed to them run from ``Simulator.step`` eventually
SCHEDULE_METHODS = frozenset({"schedule", "schedule_at", "call_later"})


def module_key(module: ModuleInfo) -> str:
    """Dotted module name derived from the display path.

    ``src/repro/sim/engine.py`` → ``repro.sim.engine``;
    ``pkg/__init__.py`` → ``pkg``. Purely lexical — the linter never
    imports the code it analyzes.
    """
    parts = list(module.parts)
    while parts and parts[0] in _LAYOUT_DIRS:
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or module.filename


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    qualname: str
    name: str
    module: ModuleInfo
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    is_property: bool = False

    @property
    def params(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]


@dataclass
class ClassInfo:
    """One analyzed class definition."""

    qualname: str
    name: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    has_slots: bool = False
    decorators: List[str] = field(default_factory=list)


def call_params(callee: "FunctionInfo", call: ast.Call) -> List[str]:
    """``callee``'s parameters as seen from ``call``'s argument list.

    Strips the implicit ``self``/``cls`` for bound-method calls
    (``obj.method(...)``) and for instantiations resolved to
    ``__init__`` (``ClassName(...)``), so positional arguments can be
    zipped against parameter names.
    """
    params = callee.params
    if (
        params
        and params[0] in ("self", "cls")
        and (
            isinstance(call.func, ast.Attribute)
            or callee.class_name is not None
        )
    ):
        return params[1:]
    return params


def _is_property_def(node: ast.AST) -> bool:
    for dec in getattr(node, "decorator_list", []):
        flat = dotted_name(dec)
        if flat is None:
            continue
        if flat == "property" or flat.endswith(".setter") or flat.endswith(".getter"):
            return True
    return False


class ProjectGraph:
    """Import graph + symbol table + conservative call graph."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.module_keys: Dict[str, ModuleInfo] = {}
        #: module key -> {local top-level symbol name -> qualname}
        self._module_scope: Dict[str, Dict[str, str]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare method name -> every analyzed method of that name
        self._methods_by_name: Dict[str, List[str]] = {}
        #: bare property name -> property methods of that name
        self._properties_by_name: Dict[str, List[str]] = {}
        #: bare class name -> class qualnames
        self._classes_by_name: Dict[str, List[str]] = {}
        #: module key -> {alias -> ("module", key) | ("symbol", key, name)}
        self._imports: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        self.import_graph: Dict[str, FrozenSet[str]] = {}
        self._calls: Optional[Dict[str, FrozenSet[str]]] = None
        self._instantiations: Optional[Dict[str, FrozenSet[str]]] = None
        self._scheduled: Optional[FrozenSet[str]] = None
        self._build_symbols()
        self._build_imports()

    # -- construction --------------------------------------------------

    def _build_symbols(self) -> None:
        for module in self.modules:
            key = module_key(module)
            self.module_keys[key] = module
            scope: Dict[str, str] = {}
            self._module_scope[key] = scope
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{key}.{node.name}"
                    self.functions[qual] = FunctionInfo(
                        qualname=qual, name=node.name, module=module, node=node
                    )
                    scope[node.name] = qual
                elif isinstance(node, ast.ClassDef):
                    self._add_class(key, module, node)
                    scope[node.name] = f"{key}.{node.name}"

    def _add_class(self, key: str, module: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{key}.{node.name}"
        bases = []
        for base in node.bases:
            flat = dotted_name(base)
            if flat is not None:
                bases.append(flat.split(".")[-1])
        decorators = [d for d in map(dotted_name, node.decorator_list) if d]
        info = ClassInfo(
            qualname=qual,
            name=node.name,
            module=module,
            node=node,
            bases=bases,
            decorators=decorators,
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mqual = f"{qual}.{stmt.name}"
                finfo = FunctionInfo(
                    qualname=mqual,
                    name=stmt.name,
                    module=module,
                    node=stmt,
                    class_name=node.name,
                    is_property=_is_property_def(stmt),
                )
                info.methods[stmt.name] = finfo
                self.functions[mqual] = finfo
                if finfo.is_property:
                    self._properties_by_name.setdefault(stmt.name, []).append(mqual)
                else:
                    self._methods_by_name.setdefault(stmt.name, []).append(mqual)
            elif isinstance(stmt, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets
                ):
                    info.has_slots = True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                ):
                    info.has_slots = True
        self.classes[qual] = info
        self._classes_by_name.setdefault(node.name, []).append(qual)

    def _resolve_module(self, dotted: str) -> Optional[str]:
        """Match an imported module path against the analyzed set.

        Exact key match first, then unique suffix match (``repro.sim``
        when the analyzed key is ``repro.sim``; fixtures under
        ``tests/...`` resolve the same way).
        """
        if dotted in self.module_keys:
            return dotted
        matches = [
            key
            for key in self.module_keys
            if key.endswith("." + dotted) or key == dotted
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    def _build_imports(self) -> None:
        for module in self.modules:
            key = module_key(module)
            table: Dict[str, Tuple[str, ...]] = {}
            edges: Set[str] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        target = self._resolve_module(alias.name)
                        if target is not None:
                            edges.add(target)
                            table[alias.asname or alias.name.split(".")[0]] = (
                                ("module", target)
                                if alias.asname
                                else ("module-path", alias.name, target)
                            )
                elif isinstance(node, ast.ImportFrom):
                    source = node.module or ""
                    if node.level:
                        prefix = key.split(".")[: -node.level]
                        source = ".".join(prefix + ([source] if source else []))
                    target = self._resolve_module(source)
                    if target is None:
                        continue
                    edges.add(target)
                    for alias in node.names:
                        sub = self._resolve_module(f"{source}.{alias.name}")
                        if sub is not None:
                            edges.add(sub)
                            table[alias.asname or alias.name] = ("module", sub)
                        else:
                            table[alias.asname or alias.name] = (
                                "symbol",
                                target,
                                alias.name,
                            )
            self._imports[key] = table
            self.import_graph[key] = frozenset(edges - {key})

    # -- symbol resolution ---------------------------------------------

    def _scope_lookup(self, modkey: str, name: str) -> Optional[str]:
        """Resolve a bare name in a module: local scope, then imports."""
        scope = self._module_scope.get(modkey, {})
        if name in scope:
            return scope[name]
        entry = self._imports.get(modkey, {}).get(name)
        if entry is None:
            return None
        if entry[0] == "symbol":
            _, target, symbol = entry
            return self._module_scope.get(target, {}).get(symbol)
        return None

    def _lineage(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """The class and its analyzed ancestors (by bare base name)."""
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            yield current
            for base in current.bases:
                resolved = self._scope_lookup(
                    module_key(current.module), base
                )
                candidates = (
                    [resolved]
                    if resolved in self.classes
                    else self._classes_by_name.get(base, [])
                )
                for qual in candidates:
                    if qual is not None and qual in self.classes:
                        stack.append(self.classes[qual])

    def _method_in_lineage(
        self, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        for ancestor in self._lineage(cls):
            if name in ancestor.methods:
                return ancestor.methods[name]
        return None

    # -- call graph ----------------------------------------------------

    def _resolve_call(
        self, func: FunctionInfo, call: ast.Call
    ) -> Tuple[Set[str], Set[str]]:
        """(callee qualnames, instantiated class qualnames) for a call."""
        callees: Set[str] = set()
        classes: Set[str] = set()
        modkey = module_key(func.module)
        target = call.func
        if isinstance(target, ast.Name):
            qual = self._scope_lookup(modkey, target.id)
            self._note_symbol(qual, callees, classes)
        elif isinstance(target, ast.Attribute):
            base = dotted_name(target.value)
            attr = target.attr
            if (
                isinstance(target.value, ast.Call)
                and dotted_name(target.value.func) == "super"
                and func.class_name is not None
            ):
                # super().method(): resolve in the ancestors only
                owner = self.classes.get(f"{modkey}.{func.class_name}")
                if owner is not None:
                    for ancestor in self._lineage(owner):
                        if ancestor is owner:
                            continue
                        if attr in ancestor.methods:
                            callees.add(ancestor.methods[attr].qualname)
                            break
            elif base in ("self", "cls") and func.class_name is not None:
                owner_qual = f"{modkey}.{func.class_name}"
                owner = self.classes.get(owner_qual)
                method = (
                    self._method_in_lineage(owner, attr) if owner else None
                )
                if method is not None:
                    callees.add(method.qualname)
                else:
                    callees.update(self._methods_by_name.get(attr, ()))
            elif base is not None and self._resolve_dotted(modkey, base):
                qual = self._resolve_dotted(modkey, f"{base}.{attr}")
                if qual is not None:
                    self._note_symbol(qual, callees, classes)
                else:
                    callees.update(self._methods_by_name.get(attr, ()))
            else:
                # obj.method(): conservative — every analyzed method of
                # that name may be the callee
                callees.update(self._methods_by_name.get(attr, ()))
        return callees, classes

    def _resolve_dotted(self, modkey: str, dotted: str) -> Optional[str]:
        """Resolve ``a.b.c`` starting from a module's scope/imports."""
        head, _, rest = dotted.partition(".")
        entry = self._imports.get(modkey, {}).get(head)
        base_module: Optional[str] = None
        if entry is not None and entry[0] == "module":
            base_module = entry[1]
        elif entry is not None and entry[0] == "module-path":
            # ``import a.b.c`` binds ``a``; only the full dotted path
            # resolves through it
            _, path, resolved = entry
            if dotted == path or dotted.startswith(path + "."):
                base_module = resolved
                rest = dotted[len(path) + 1 :]
            else:
                return None
        elif entry is not None and entry[0] == "symbol":
            resolved = self._scope_lookup(modkey, head)
            if resolved in self.classes and rest:
                method = self.classes[resolved].methods.get(rest)
                return method.qualname if method is not None else None
            return resolved if not rest else None
        else:
            qual = self._scope_lookup(modkey, head)
            if qual in self.classes and rest:
                method = self.classes[qual].methods.get(rest)
                return method.qualname if method is not None else None
            return qual if not rest else None
        if base_module is None:
            return None
        if not rest:
            return base_module
        return self._scope_lookup(base_module, rest.split(".")[0]) if (
            "." not in rest
        ) else self._resolve_dotted(base_module, rest)

    def _note_symbol(
        self, qual: Optional[str], callees: Set[str], classes: Set[str]
    ) -> None:
        if qual is None:
            return
        if qual in self.functions:
            callees.add(qual)
        elif qual in self.classes:
            classes.add(qual)
            init = self._method_in_lineage(self.classes[qual], "__init__")
            if init is not None:
                callees.add(init.qualname)

    def _ensure_calls(self) -> None:
        if self._calls is not None:
            return
        calls: Dict[str, FrozenSet[str]] = {}
        instantiations: Dict[str, FrozenSet[str]] = {}
        scheduled: Set[str] = set()
        for qual, func in self.functions.items():
            callees: Set[str] = set()
            classes: Set[str] = set()
            for node in self._body_walk(func.node):
                if isinstance(node, ast.Call):
                    found, created = self._resolve_call(func, node)
                    callees.update(found)
                    classes.update(created)
                    scheduled.update(self._callback_refs(func, node))
                elif isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    # attribute reads dispatch to @property methods
                    callees.update(
                        self._properties_by_name.get(node.attr, ())
                    )
            calls[qual] = frozenset(callees - {qual})
            instantiations[qual] = frozenset(classes)
        self._calls = calls
        self._instantiations = instantiations
        self._scheduled = frozenset(scheduled)

    def _callback_refs(self, func: FunctionInfo, call: ast.Call) -> Set[str]:
        """Function references passed to a schedule-like call.

        ``sim.schedule(delay, self._on_timeout, pkt)`` never *calls*
        ``_on_timeout`` syntactically — the event loop does, through
        ``event.callback(*event.args)``, which no static resolution can
        see. Recording the reference here lets callers treat everything
        ever scheduled as reachable from ``Simulator.step``.
        """
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in SCHEDULE_METHODS
        ):
            return set()
        refs: Set[str] = set()
        for arg in call.args:
            if isinstance(arg, ast.Attribute):
                refs.update(self._methods_by_name.get(arg.attr, ()))
            elif isinstance(arg, ast.Name):
                qual = self._scope_lookup(module_key(func.module), arg.id)
                if qual in self.functions:
                    refs.add(qual)
        return refs

    @property
    def scheduled_callbacks(self) -> FrozenSet[str]:
        """Every function whose reference is passed to a schedule call."""
        self._ensure_calls()
        assert self._scheduled is not None
        return self._scheduled

    def resolve_call(
        self, func: FunctionInfo, call: ast.Call
    ) -> Tuple[Set[str], Set[str]]:
        """Public alias: (callees, instantiated classes) for one call."""
        return self._resolve_call(func, call)

    @staticmethod
    def _body_walk(root: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body, descending into nested defs too."""
        yield from ast.walk(root)

    @property
    def calls(self) -> Dict[str, FrozenSet[str]]:
        """Function qualname -> callee qualnames (conservative)."""
        self._ensure_calls()
        assert self._calls is not None
        return self._calls

    @property
    def instantiations(self) -> Dict[str, FrozenSet[str]]:
        """Function qualname -> class qualnames it instantiates."""
        self._ensure_calls()
        assert self._instantiations is not None
        return self._instantiations

    # -- queries -------------------------------------------------------

    def find_methods(
        self, class_pattern: str, method_names: Sequence[str]
    ) -> List[str]:
        """Qualnames of ``method_names`` on classes matching the
        fnmatch-style ``class_pattern`` (e.g. ``*Queue``)."""
        hits = []
        for cls in self.classes.values():
            if not fnmatchcase(cls.name, class_pattern):
                continue
            for name in method_names:
                if name in cls.methods:
                    hits.append(cls.methods[name].qualname)
        return sorted(hits)

    def reachable(self, roots: Sequence[str]) -> FrozenSet[str]:
        """Every function reachable from ``roots`` through the call
        graph (including the roots themselves)."""
        calls = self.calls
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(calls.get(current, ()))
        return frozenset(seen)

    def classes_instantiated_by(
        self, functions: FrozenSet[str]
    ) -> FrozenSet[str]:
        """Class qualnames instantiated anywhere in ``functions``."""
        instantiations = self.instantiations
        out: Set[str] = set()
        for qual in functions:
            out.update(instantiations.get(qual, ()))
        return frozenset(out)

    def function_at(self, module: ModuleInfo, node: ast.AST) -> Optional[str]:
        """Qualname of the innermost function containing ``node``."""
        chain: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                chain.append(current.name)
            elif isinstance(current, ast.ClassDef):
                chain.append(current.name)
            current = module.parents.get(current)
        if not chain:
            return None
        qual = ".".join([module_key(module)] + list(reversed(chain)))
        return qual if qual in self.functions else None
