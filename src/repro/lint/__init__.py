"""``repro.lint`` — simulator-correctness static analysis (simlint).

The reproduction's headline numbers rest on two conventions nothing in
Python enforces: every quantity is in SI base units (:mod:`repro.units`)
and all randomness flows through seeded named streams
(:mod:`repro.sim.rng`). This package is an AST-based linter that turns
those conventions — plus the CCA plug-in contract and a few API-hygiene
basics — into mechanically checked rules.

Four rule families:

* **units** — unit-suffix mismatches in arithmetic and at call sites,
  raw exponent literals (``1e9``, ``1024**3``) outside ``units.py``
* **determinism** — unseeded entropy sources (``import random``,
  ``time.time()``, ``os.urandom``) outside ``sim/rng.py``; iteration
  over unordered sets in the simulator packages
* **cca-contract** — every :class:`~repro.cc.base.CongestionControl`
  subclass must set ``name``, be registered, and override ``on_ack``
* **api-hygiene** — mutable default arguments, bare ``except:``,
  missing ``from __future__ import annotations``

Run it as ``greenenvy lint src`` (exit 0 clean, 1 findings, 2 usage
error) or programmatically via :func:`run_lint`. Findings are
suppressed per line with ``# simlint: ignore[rule-name]``.
"""

from __future__ import annotations

from repro.lint.core import Finding, LintUsageError, ModuleInfo, Rule
from repro.lint.engine import LintResult, all_rule_names, iter_rules, run_lint
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintResult",
    "LintUsageError",
    "ModuleInfo",
    "Rule",
    "all_rule_names",
    "iter_rules",
    "render_json",
    "render_text",
    "run_lint",
]
