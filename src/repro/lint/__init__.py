"""``repro.lint`` — simulator-correctness static analysis (simlint).

The reproduction's headline numbers rest on two conventions nothing in
Python enforces: every quantity is in SI base units (:mod:`repro.units`)
and all randomness flows through seeded named streams
(:mod:`repro.sim.rng`). This package is a whole-program AST analyzer
that turns those conventions — plus the CCA plug-in contract, a few
API-hygiene basics, and the event loop's performance discipline — into
mechanically checked rules.

Seven rule families:

* **units** — unit-suffix mismatches in arithmetic and at call sites,
  raw exponent literals (``1e9``, ``1024**3``) outside ``units.py``
* **units-flow** — the same dimensional analysis propagated through
  assignments, function returns, and call-graph-resolved call
  arguments (:mod:`repro.lint.dataflow`)
* **determinism** — unseeded entropy sources (``import random``,
  ``time.time()``, ``os.urandom``) outside ``sim/rng.py``; iteration
  over unordered sets in the simulator packages
* **determinism-flow** — taint tracking from entropy sources to
  simulation-state sinks across function and module boundaries
* **cca-contract** — every :class:`~repro.cc.base.CongestionControl`
  subclass must set ``name``, be registered, and override ``on_ack``
* **api-hygiene** — mutable default arguments, bare ``except:``,
  missing ``from __future__ import annotations``
* **perf** — per-event allocations, repeated attribute lookups in hot
  loops, missing ``__slots__``, and type-dispatch in functions the
  call graph (:mod:`repro.lint.graph`) proves reachable from the
  event loop

Run it as ``greenenvy lint src`` (exit 0 clean, 1 findings, 2 usage
error) or programmatically via :func:`run_lint`. Findings are
suppressed per line with a ``simlint: ignore[rule-name]`` comment; dead or
misspelled suppressions are themselves findings. Known debt lives in a
committed baseline (:mod:`repro.lint.baseline`) so CI gates only new
findings, and ``--format sarif`` emits SARIF 2.1.0 for code-scanning
UIs.
"""

from __future__ import annotations

from repro.lint.baseline import (
    load_baseline,
    make_baseline,
    new_findings,
    render_baseline,
)
from repro.lint.core import Finding, LintUsageError, ModuleInfo, Rule
from repro.lint.engine import LintResult, all_rule_names, iter_rules, run_lint
from repro.lint.reporters import (
    render_json,
    render_sarif,
    render_text,
    to_sarif_dict,
)

__all__ = [
    "Finding",
    "LintResult",
    "LintUsageError",
    "ModuleInfo",
    "Rule",
    "all_rule_names",
    "iter_rules",
    "load_baseline",
    "make_baseline",
    "new_findings",
    "render_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "to_sarif_dict",
]
