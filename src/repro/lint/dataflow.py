"""Conservative intra+inter-procedural dataflow on the project graph.

Two analyses share the machinery here:

* :class:`TaintEngine` — boolean taint with string labels. Sources and
  sinks are supplied by the rule (determinism-flow marks ``random.*`` /
  ``time.*`` / set-iteration-order values; sinks are writes to
  simulation state and scheduler arguments). Function **summaries** —
  does this function *return* taint, do its *parameters* reach its
  return or a sink — are computed to a fixpoint over the call graph, so
  a wall-clock read two helpers away from a state write is still
  connected to it.
* :class:`UnitFlow` — dimensional inference. Units attach to
  identifiers via the ``units.py`` suffix convention; this engine
  propagates them through local assignments and function returns so a
  watts value laundered through an unsuffixed temporary or a helper
  call still carries its dimension to the point of misuse.

Both are deliberately *flow-insensitive within a function* (one
environment per function, built in two passes so loop-carried values
settle): the goal is catching real cross-module bugs with near-zero
false positives, not soundness. Unknown calls drop taint and units —
the analyses under-approximate rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.core import ModuleInfo, dotted_name
from repro.lint.graph import FunctionInfo, ProjectGraph, call_params, module_key

#: taint labels carried by parameters during summary construction;
#: stripped before anything is reported
_PARAM_PREFIX = "param:"

#: calls that launder away iteration-order/entropy taint
DEFAULT_SANITIZERS = frozenset({"sorted", "len", "sum", "min", "max"})


@dataclass(frozen=True)
class Sink:
    """One place a tainted value must not reach."""

    value: ast.AST  #: the expression that must stay clean
    description: str  #: e.g. "simulation state `self.cwnd_bytes`"
    anchor: ast.AST  #: node findings are anchored at


@dataclass
class TaintSummary:
    """What one function does with taint, seen from its callers."""

    returns: FrozenSet[str] = frozenset()  #: source labels it returns
    param_returns: FrozenSet[str] = frozenset()  #: params reaching return
    param_sinks: Dict[str, str] = field(default_factory=dict)

    def key(self) -> Tuple[object, ...]:
        return (
            self.returns,
            self.param_returns,
            tuple(sorted(self.param_sinks.items())),
        )


@dataclass(frozen=True)
class TaintHit:
    """A tainted value reaching a sink inside one function."""

    function: str
    anchor: ast.AST
    labels: FrozenSet[str]
    sink: str


class TaintEngine:
    """Label propagation with call-graph summaries.

    ``classify_source(dotted, node)`` names a call/expression as a
    taint source (returns the label, e.g. ``"time.time() wall clock"``)
    or ``None``. ``sinks_of(func)`` enumerates the :class:`Sink` s in
    one function. Both hooks come from the rule using the engine.
    """

    def __init__(
        self,
        graph: ProjectGraph,
        classify_source: Callable[[Optional[str], ast.AST], Optional[str]],
        sinks_of: Callable[[FunctionInfo], Sequence[Sink]],
        sanitizers: FrozenSet[str] = DEFAULT_SANITIZERS,
        transform_iteration: Optional[Callable[[Set[str]], Set[str]]] = None,
    ):
        self.graph = graph
        self._classify_source = classify_source
        self._sinks_of = sinks_of
        self._sanitizers = sanitizers
        #: applied to labels crossing a ``for``/comprehension binding —
        #: how set *values* become set *iteration order* taint
        self._transform_iteration = transform_iteration or (lambda labels: labels)
        self.summaries: Dict[str, TaintSummary] = {
            qual: TaintSummary() for qual in graph.functions
        }
        self._sink_cache: Dict[str, Sequence[Sink]] = {}
        self._fixpoint()

    # -- environments --------------------------------------------------

    def env_of(self, qual: str) -> Dict[str, FrozenSet[str]]:
        """Final variable-name -> labels environment for one function.

        Parameters carry ``param:<name>`` pseudo-labels so summary and
        report passes share one environment; reporting strips them.
        """
        func = self.graph.functions[qual]
        env: Dict[str, Set[str]] = {
            name: {_PARAM_PREFIX + name} for name in func.params
        }
        body = getattr(func.node, "body", [])
        for _ in range(2):  # second pass settles loop-carried taint
            for stmt in body:
                self._flow_stmt(stmt, env, func)
        return {name: frozenset(labels) for name, labels in env.items()}

    def _flow_stmt(
        self, stmt: ast.AST, env: Dict[str, Set[str]], func: FunctionInfo
    ) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                labels = self.eval(node.value, env, func)
                for target in node.targets:
                    self._bind(target, labels, env)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind(node.target, self.eval(node.value, env, func), env)
            elif isinstance(node, ast.AugAssign):
                labels = self.eval(node.value, env, func)
                if isinstance(node.target, ast.Name):
                    env.setdefault(node.target.id, set()).update(labels)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind(
                    node.target,
                    self._transform_iteration(
                        self.eval(node.iter, env, func)
                    ),
                    env,
                )
            elif isinstance(node, ast.withitem) and node.optional_vars:
                self._bind(
                    node.optional_vars,
                    self.eval(node.context_expr, env, func),
                    env,
                )
            elif isinstance(node, ast.comprehension):
                self._bind(
                    node.target,
                    self._transform_iteration(
                        self.eval(node.iter, env, func)
                    ),
                    env,
                )

    @staticmethod
    def _bind(
        target: ast.AST, labels: Set[str], env: Dict[str, Set[str]]
    ) -> None:
        if isinstance(target, ast.Name):
            env.setdefault(target.id, set()).update(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                TaintEngine._bind(element, labels, env)
        elif isinstance(target, ast.Starred):
            TaintEngine._bind(target.value, labels, env)

    # -- expression evaluation -----------------------------------------

    def eval(
        self,
        node: Optional[ast.AST],
        env: Dict[str, Set[str]],
        func: FunctionInfo,
    ) -> Set[str]:
        """Labels carried by an expression under ``env``."""
        if node is None:
            return set()
        source = self._classify_source(dotted_name(node), node)
        if source is not None:
            return {source}
        if isinstance(node, ast.Name):
            return set(env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            return self.eval(node.value, env, func)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, func)
        if isinstance(node, ast.BinOp):
            return self.eval(node.left, env, func) | self.eval(
                node.right, env, func
            )
        if isinstance(node, ast.BoolOp):
            out: Set[str] = set()
            for value in node.values:
                out |= self.eval(value, env, func)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env, func)
        if isinstance(node, ast.Compare):
            out = self.eval(node.left, env, func)
            for comparator in node.comparators:
                out |= self.eval(comparator, env, func)
            return out
        if isinstance(node, ast.IfExp):
            return self.eval(node.body, env, func) | self.eval(
                node.orelse, env, func
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self.eval(element, env, func)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for value in node.values:
                out |= self.eval(value, env, func)
            return out
        if isinstance(node, ast.Subscript):
            return self.eval(node.value, env, func)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env, func)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.eval(value.value, env, func)
            return out
        return set()

    def _eval_call(
        self, node: ast.Call, env: Dict[str, Set[str]], func: FunctionInfo
    ) -> Set[str]:
        callee = dotted_name(node.func)
        if callee is not None and callee.split(".")[-1] in self._sanitizers:
            return set()
        source = self._classify_source(callee, node)
        if source is not None:
            return {source}
        out: Set[str] = set()
        callees, _ = self.graph.resolve_call(func, node)
        for qual in callees:
            summary = self.summaries.get(qual)
            target = self.graph.functions.get(qual)
            if summary is None or target is None:
                continue
            out |= summary.returns
            if summary.param_returns:
                for param, arg in self._map_args(node, target):
                    if param in summary.param_returns:
                        out |= self.eval(arg, env, func)
        return out

    @staticmethod
    def _strip_params(labels: Set[str]) -> Set[str]:
        return {l for l in labels if not l.startswith(_PARAM_PREFIX)}

    @staticmethod
    def _map_args(
        call: ast.Call, callee: FunctionInfo
    ) -> Iterator[Tuple[str, ast.AST]]:
        """Pair call arguments with the callee's parameter names."""
        params = call_params(callee, call)
        for param, arg in zip(params, call.args):
            yield param, arg
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                yield keyword.arg, keyword.value

    # -- summaries -----------------------------------------------------

    def _sinks(self, qual: str) -> Sequence[Sink]:
        if qual not in self._sink_cache:
            self._sink_cache[qual] = self._sinks_of(self.graph.functions[qual])
        return self._sink_cache[qual]

    def _fixpoint(self, max_rounds: int = 10) -> None:
        for _ in range(max_rounds):
            changed = False
            for qual, func in self.graph.functions.items():
                summary = self._summarize(qual, func)
                if summary.key() != self.summaries[qual].key():
                    self.summaries[qual] = summary
                    changed = True
            if not changed:
                return

    def _summarize(self, qual: str, func: FunctionInfo) -> TaintSummary:
        env = self.env_of(qual)
        mutable = {name: set(labels) for name, labels in env.items()}
        returns: Set[str] = set()
        param_returns: Set[str] = set()
        param_sinks: Dict[str, str] = {}
        for node in ast.walk(func.node):
            if isinstance(node, ast.Return) and node.value is not None:
                labels = self.eval(node.value, mutable, func)
                returns |= self._strip_params(labels)
                param_returns |= {
                    label[len(_PARAM_PREFIX):]
                    for label in labels
                    if label.startswith(_PARAM_PREFIX)
                }
            elif isinstance(node, ast.Call):
                # a tainted param handed to a callee whose own summary
                # says that parameter reaches a sink
                for callee_qual in self.graph.resolve_call(func, node)[0]:
                    target = self.graph.functions.get(callee_qual)
                    callee_summary = self.summaries.get(callee_qual)
                    if target is None or not callee_summary:
                        continue
                    if not callee_summary.param_sinks:
                        continue
                    for param, arg in self._map_args(node, target):
                        sink = callee_summary.param_sinks.get(param)
                        if sink is None:
                            continue
                        for label in self.eval(arg, mutable, func):
                            if label.startswith(_PARAM_PREFIX):
                                param_sinks[
                                    label[len(_PARAM_PREFIX):]
                                ] = sink
        for sink in self._sinks(qual):
            for label in self.eval(sink.value, mutable, func):
                if label.startswith(_PARAM_PREFIX):
                    param_sinks[label[len(_PARAM_PREFIX):]] = sink.description
        return TaintSummary(
            returns=frozenset(returns),
            param_returns=frozenset(param_returns),
            param_sinks=param_sinks,
        )

    # -- reporting -----------------------------------------------------

    def hits(self) -> Iterator[TaintHit]:
        """Every (tainted value -> sink) flow with a real source label.

        Flows whose taint enters via a parameter are reported at the
        call site that supplied the tainted argument, so each bug
        surfaces exactly once, where the entropy actually originates.
        """
        for qual, func in self.graph.functions.items():
            env_f = self.env_of(qual)
            env = {name: set(labels) for name, labels in env_f.items()}
            for sink in self._sinks(qual):
                labels = self._strip_params(self.eval(sink.value, env, func))
                if labels:
                    yield TaintHit(
                        function=qual,
                        anchor=sink.anchor,
                        labels=frozenset(labels),
                        sink=sink.description,
                    )
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                for callee_qual in self.graph.resolve_call(func, node)[0]:
                    target = self.graph.functions.get(callee_qual)
                    summary = self.summaries.get(callee_qual)
                    if target is None or summary is None:
                        continue
                    if not summary.param_sinks:
                        continue
                    for param, arg in self._map_args(node, target):
                        sink_desc = summary.param_sinks.get(param)
                        if sink_desc is None:
                            continue
                        labels = self._strip_params(
                            self.eval(arg, env, func)
                        )
                        if labels:
                            yield TaintHit(
                                function=qual,
                                anchor=node,
                                labels=frozenset(labels),
                                sink=f"{sink_desc} (via "
                                f"{target.name}({param}=...))",
                            )


# -- unit flow ---------------------------------------------------------

Unit = Tuple[str, str]  #: (dimension, scale), e.g. ("power", "w")


class UnitFlow:
    """Dimensional inference over assignments, returns, and calls.

    Builds on the per-file suffix convention from ``rules/units.py``:
    identifiers ending in ``_w``/``_j``/``_s``/``_bps``/... declare
    their unit. This engine adds what suffixes alone cannot express —
    units of *unsuffixed* locals inferred from their assignments, and
    units of function return values propagated to call sites.
    """

    def __init__(
        self,
        graph: ProjectGraph,
        unit_of_name: Callable[[str], Optional[Unit]],
        unit_of_expr: Callable[[ast.AST], Optional[Unit]],
    ):
        self.graph = graph
        self._unit_of_name = unit_of_name
        self._unit_of_expr = unit_of_expr
        #: function qualname -> unit of its return value (None: unknown
        #: or mixed)
        self.returns: Dict[str, Optional[Unit]] = {}
        self._env_cache: Dict[str, Dict[str, Optional[Unit]]] = {}
        self._fixpoint()

    def _fixpoint(self, max_rounds: int = 6) -> None:
        self.returns = {qual: None for qual in self.graph.functions}
        for _ in range(max_rounds):
            changed = False
            self._env_cache.clear()
            for qual, func in self.graph.functions.items():
                unit = self._return_unit(qual, func)
                if unit != self.returns[qual]:
                    self.returns[qual] = unit
                    changed = True
            if not changed:
                return

    def _return_unit(self, qual: str, func: FunctionInfo) -> Optional[Unit]:
        declared = self._unit_of_name(func.name)
        if declared is not None:
            return declared
        env = self.env_of(qual)
        units: Set[Unit] = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Return) and node.value is not None:
                unit = self.unit_of(node.value, env, func)
                if unit is None:
                    return None  # one unknown return poisons the summary
                units.add(unit)
        if len(units) == 1:
            return next(iter(units))
        return None

    def env_of(self, qual: str) -> Dict[str, Optional[Unit]]:
        """Units of *unsuffixed* locals, inferred from assignments.

        A name assigned conflicting units maps to ``None`` (unknown),
        never a guess. Suffixed names resolve through the suffix
        directly and are not stored here.
        """
        if qual in self._env_cache:
            return self._env_cache[qual]
        func = self.graph.functions[qual]
        env: Dict[str, Optional[Unit]] = {}
        self._env_cache[qual] = env  # placed early: recursion guard
        for _ in range(2):
            for node in ast.walk(func.node):
                if isinstance(node, ast.Assign):
                    value_unit = self.unit_of(node.value, env, func)
                    for target in node.targets:
                        self._bind(target, value_unit, env)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    self._bind(
                        node.target, self.unit_of(node.value, env, func), env
                    )
        return env

    def _bind(
        self,
        target: ast.AST,
        unit: Optional[Unit],
        env: Dict[str, Optional[Unit]],
    ) -> None:
        if not isinstance(target, ast.Name):
            return  # tuple unpacking: element units are not tracked
        if self._unit_of_name(target.id) is not None:
            return  # suffixed names carry their own declaration
        if target.id in env and env[target.id] != unit:
            env[target.id] = None  # conflicting assignments: unknown
        else:
            env[target.id] = unit

    def unit_of(
        self,
        node: ast.AST,
        env: Dict[str, Optional[Unit]],
        func: Optional[FunctionInfo],
    ) -> Optional[Unit]:
        """Unit of an expression: suffixes, env, helper/summary returns.

        ``func`` is the enclosing function (``None`` at module level,
        where calls cannot be resolved through the graph).
        """
        direct = self._unit_of_expr(node)
        if direct is not None:
            return direct
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            if func is None:
                return None
            callees, _ = self.graph.resolve_call(func, node)
            units = {self.returns.get(qual) for qual in callees}
            if len(units) == 1:
                return next(iter(units))
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left = self.unit_of(node.left, env, func)
            right = self.unit_of(node.right, env, func)
            if left is not None and left == right:
                return left
            return None
        if isinstance(node, ast.IfExp):
            body = self.unit_of(node.body, env, func)
            orelse = self.unit_of(node.orelse, env, func)
            return body if body == orelse else None
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand, env, func)
        return None

    def functions_in(self, module: ModuleInfo) -> List[FunctionInfo]:
        """The analyzed functions defined in one module."""
        key = module_key(module)
        prefix = key + "."
        return [
            info
            for qual, info in sorted(self.graph.functions.items())
            if qual.startswith(prefix) and info.module is module
        ]
