"""Finding baselines: accept today's debt, gate tomorrow's.

A baseline file records the findings a tree is *known* to have so CI can
fail only on new ones — the standard ratchet for introducing a linter to
an existing codebase. Entries are keyed on ``(path, rule, message)``
with a count, deliberately excluding line numbers so unrelated edits
that shift code do not churn the file. The JSON is sorted and stable:
regenerating it on an unchanged tree is a no-op diff.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.core import Finding, LintUsageError

#: bump on breaking changes to the baseline file layout
BASELINE_VERSION = 1

Key = Tuple[str, str, str]


def _key(finding: Finding) -> Key:
    return (finding.path, finding.rule, finding.message)


def make_baseline(findings: List[Finding]) -> Dict:
    """The baseline dict for a list of findings (sorted, count-keyed)."""
    counts = Counter(_key(f) for f in findings)
    return {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": path, "rule": rule, "message": message, "count": count}
            for (path, rule, message), count in sorted(counts.items())
        ],
    }


def render_baseline(findings: List[Finding]) -> str:
    """Stable JSON text for the committed baseline file."""
    return json.dumps(make_baseline(findings), indent=2, sort_keys=True) + "\n"


def load_baseline(path: Path) -> Dict[Key, int]:
    """Parse a baseline file into a count-per-key map."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise LintUsageError(f"no such baseline file: {path}")
    except json.JSONDecodeError as exc:
        raise LintUsageError(f"baseline {path} is not valid JSON: {exc}")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise LintUsageError(
            f"baseline {path} has version {version!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    counts: Dict[Key, int] = {}
    for entry in payload.get("findings", []):
        key = (entry["path"], entry["rule"], entry["message"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def new_findings(
    findings: List[Finding], baseline: Dict[Key, int]
) -> List[Finding]:
    """Findings not absorbed by the baseline.

    Each baseline entry absorbs up to ``count`` findings with the same
    ``(path, rule, message)``; the overflow — and anything the baseline
    has never seen — is *new* and should fail the gate.
    """
    budget = dict(baseline)
    out: List[Finding] = []
    for finding in sorted(findings):
        key = _key(finding)
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
        else:
            out.append(finding)
    return out
