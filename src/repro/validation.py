"""Calibration self-checks (``greenenvy validate``).

Fast (< 1 s, no simulation) assertions that the calibrated energy model
still matches the paper's published numbers. Run these after touching
anything in :mod:`repro.energy.calibration` — they are the contract the
rest of the reproduction stands on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.theorem import is_strictly_concave_on, theorem1_savings
from repro.energy import calibration as cal
from repro.energy.power_model import PowerModel
from repro.units import MILLION


@dataclass
class Check:
    """One named validation with its outcome."""

    name: str
    expected: str
    actual: str
    ok: bool


def _close(a: float, b: float, tol: float) -> bool:
    return abs(a - b) <= tol * max(abs(a), abs(b), 1e-12)


def run_validation() -> List[Check]:
    """All calibration checks, in dependency order."""
    model = PowerModel()
    p = model.smooth_sending_power_w
    checks: List[Check] = []

    def add(name: str, expected: str, actual: str, ok: bool) -> None:
        checks.append(Check(name, expected, actual, ok))

    # anchors
    add(
        "idle power anchor",
        f"{cal.P_IDLE_W} W (paper §4.1)",
        f"{p(0.0):.2f} W",
        _close(p(0.0), cal.P_IDLE_W, 1e-6),
    )
    add(
        "half-rate anchor",
        f"{cal.P_HALF_RATE_W} W",
        f"{p(5.0):.2f} W",
        _close(p(5.0), cal.P_HALF_RATE_W, 1e-6),
    )
    add(
        "line-rate anchor",
        f"{cal.P_LINE_RATE_W} W",
        f"{p(10.0):.2f} W",
        _close(p(10.0), cal.P_LINE_RATE_W, 1e-6),
    )

    # structure
    add(
        "strict concavity (Theorem 1 premise)",
        "concave on [0, 10] Gb/s",
        "holds" if is_strictly_concave_on(p, 0.0, 10.0) else "VIOLATED",
        is_strictly_concave_on(p, 0.0, 10.0),
    )
    saving = theorem1_savings(p, 10.0, [10.0, 0.0])
    add(
        "full-speed-then-idle saving",
        "16.3% (paper §4.1 arithmetic)",
        f"{100 * saving:.1f}%",
        _close(saving, 0.163, 0.05),
    )

    # marginal-power quote (§4.1)
    first = (p(5.0) - p(0.0)) / p(0.0)
    second = (p(10.0) - p(5.0)) / p(5.0)
    add(
        "first 5 Gb/s power increase",
        "~60% (paper: 12.7 W on 21.49 W)",
        f"{100 * first:.0f}%",
        0.5 <= first <= 0.7,
    )
    add(
        "next 5 Gb/s power increase",
        "~5% (paper: 1.6 W on 34.23 W)",
        f"{100 * second:.1f}%",
        0.02 <= second <= 0.08,
    )

    # loaded-host savings (§4.2), from the analytic model
    for load, expected in ((0.25, 0.010), (0.75, 0.0017)):
        fair = 2 * model.smooth_sending_power_w(5.0, load)
        fsti = model.smooth_sending_power_w(10.0, load) + (
            model.smooth_sending_power_w(0.0, load)
        )
        measured = (fair - fsti) / fair
        add(
            f"savings at {100 * load:.0f}% load",
            f"{100 * expected:.2f}% (paper §4.2)",
            f"{100 * measured:.2f}%",
            _close(measured, expected, 0.4),
        )

    # dollars (§4.2)
    from repro.core.savings import paper_headline_savings

    dollars = paper_headline_savings()
    add(
        "1% at datacenter scale",
        "$10M/year",
        f"${dollars / MILLION:.1f}M/year",
        _close(dollars, 10 * MILLION, 0.01),
    )
    return checks


def validation_passed(checks: List[Check]) -> bool:
    """Whether every check is green."""
    return all(c.ok for c in checks)
