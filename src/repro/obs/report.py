"""Journal summarization: what ``greenenvy obs report`` prints.

Reads a sweep's merged JSONL journal and answers the operator
questions: how many runs, how effective was the cache, which scenarios
were slow (wall-time percentiles), which individual runs were slowest,
where did pipeline wall time go (span totals), and did any worker
fail. A journal with ``worker_error`` events makes the CLI exit 1, so
``greenenvy obs report`` can gate CI on a sweep's health.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from repro.analysis.tables import format_table
from repro.errors import ObservabilityError


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100), linearly interpolated."""
    if not values:
        raise ObservabilityError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ObservabilityError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class ScenarioStats:
    """Wall-time distribution of one scenario's finished runs."""

    scenario: str
    runs: int
    p50_wall_s: float
    p90_wall_s: float
    max_wall_s: float
    mean_sim_time_s: float


@dataclass
class PhaseStats:
    """Aggregate wall time of one profiled phase across all spans."""

    phase: str
    count: int
    total_wall_s: float


@dataclass
class EngineHeapStats:
    """Event-heap health across all ``sim_loop`` spans in the journal.

    The engine reports its final ``pending_events`` / ``dead_in_queue``
    gauges per run; tombstone buildup here is the first symptom of a
    cancellation-heavy scenario stressing the lazy-deletion heap.
    """

    runs: int = 0
    max_pending_events: int = 0
    total_dead_in_queue: int = 0
    max_dead_in_queue: int = 0


@dataclass
class JournalSummary:
    """Everything the report renders, extracted from one journal."""

    events: int
    runs_finished: int
    cache_hits: int
    cache_misses: int
    per_scenario: List[ScenarioStats] = field(default_factory=list)
    slowest: List[Dict[str, Any]] = field(default_factory=list)
    phases: List[PhaseStats] = field(default_factory=list)
    errors: List[Dict[str, Any]] = field(default_factory=list)
    heap: EngineHeapStats = field(default_factory=EngineHeapStats)
    batches_started: int = 0
    batches_finished: int = 0
    batches_aborted: int = 0
    #: runs started whose terminal event (finished/error) never arrived
    runs_in_flight: int = 0
    abort_reason: str = ""

    @property
    def cache_hit_ratio(self) -> float:
        """Hits over lookups (0.0 when the batch never touched a cache)."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def aborted(self) -> bool:
        """Whether the sweep was cancelled cooperatively mid-run."""
        return self.batches_aborted > 0

    @property
    def complete(self) -> bool:
        """Whether every started batch reached its terminal event.

        A journal whose final ``batch_finished``/``batch_aborted`` is
        missing belongs to a *killed* run (OOM, SIGKILL, a pulled
        plug): the sweep never finished, however clean its per-run
        events look. Journals with no batch events at all (unit-test
        fixtures, hand-built streams) are vacuously complete.
        """
        return (
            self.batches_finished + self.batches_aborted
            >= self.batches_started
        )

    @property
    def healthy(self) -> bool:
        """Whether the sweep ran to completion without worker errors."""
        return not self.errors and self.complete and not self.aborted


def summarize_journal(
    events: Sequence[Mapping[str, Any]], slowest: int = 5
) -> JournalSummary:
    """Aggregate a journal's events into a :class:`JournalSummary`."""
    finished = [e for e in events if e.get("event") == "run_finished"]
    errors = [e for e in events if e.get("event") == "worker_error"]
    hits = sum(1 for e in events if e.get("event") == "cache_hit")
    misses = sum(1 for e in events if e.get("event") == "cache_miss")
    started = sum(1 for e in events if e.get("event") == "run_started")
    batches_started = sum(
        1 for e in events if e.get("event") == "batch_started"
    )
    batches_finished = sum(
        1 for e in events if e.get("event") == "batch_finished"
    )
    aborts = [e for e in events if e.get("event") == "batch_aborted"]
    abort_reason = str(aborts[-1].get("reason", "")) if aborts else ""

    by_scenario: Dict[str, List[Mapping[str, Any]]] = {}
    for record in finished:
        by_scenario.setdefault(str(record.get("scenario", "?")), []).append(record)
    per_scenario = []
    for scenario in sorted(by_scenario):
        walls = [float(e.get("wall_s", 0.0)) for e in by_scenario[scenario]]
        sims = [float(e.get("sim_time_s", 0.0)) for e in by_scenario[scenario]]
        per_scenario.append(
            ScenarioStats(
                scenario=scenario,
                runs=len(walls),
                p50_wall_s=percentile(walls, 50.0),
                p90_wall_s=percentile(walls, 90.0),
                max_wall_s=max(walls),
                mean_sim_time_s=sum(sims) / len(sims),
            )
        )

    spans: Dict[str, PhaseStats] = {}
    heap = EngineHeapStats()
    for record in events:
        if record.get("event") != "span":
            continue
        phase = str(record.get("phase", "?"))
        stats = spans.setdefault(phase, PhaseStats(phase=phase, count=0, total_wall_s=0.0))
        stats.count += 1
        stats.total_wall_s += float(record.get("wall_s", 0.0))
        if phase == "sim_loop" and "pending_events" in record:
            pending = int(record.get("pending_events", 0))
            dead = int(record.get("dead_in_queue", 0))
            heap.runs += 1
            heap.max_pending_events = max(heap.max_pending_events, pending)
            heap.total_dead_in_queue += dead
            heap.max_dead_in_queue = max(heap.max_dead_in_queue, dead)

    ranked = sorted(
        finished, key=lambda e: float(e.get("wall_s", 0.0)), reverse=True
    )
    return JournalSummary(
        events=len(events),
        runs_finished=len(finished),
        cache_hits=hits,
        cache_misses=misses,
        per_scenario=per_scenario,
        slowest=[dict(e) for e in ranked[:slowest]],
        phases=sorted(
            spans.values(), key=lambda s: s.total_wall_s, reverse=True
        ),
        errors=[dict(e) for e in errors],
        heap=heap,
        batches_started=batches_started,
        batches_finished=batches_finished,
        batches_aborted=len(aborts),
        runs_in_flight=max(0, started - len(finished) - len(errors)),
        abort_reason=abort_reason,
    )


def summary_to_dict(summary: JournalSummary) -> Dict[str, Any]:
    """A JSON-ready rendering of the summary (schema version 1)."""
    return {
        "version": 1,
        "events": summary.events,
        "runs_finished": summary.runs_finished,
        "cache_hits": summary.cache_hits,
        "cache_misses": summary.cache_misses,
        "cache_hit_ratio": summary.cache_hit_ratio,
        "healthy": summary.healthy,
        "complete": summary.complete,
        "aborted": summary.aborted,
        "abort_reason": summary.abort_reason,
        "batches_started": summary.batches_started,
        "batches_finished": summary.batches_finished,
        "batches_aborted": summary.batches_aborted,
        "runs_in_flight": summary.runs_in_flight,
        "per_scenario": [
            {
                "scenario": s.scenario,
                "runs": s.runs,
                "p50_wall_s": s.p50_wall_s,
                "p90_wall_s": s.p90_wall_s,
                "max_wall_s": s.max_wall_s,
                "mean_sim_time_s": s.mean_sim_time_s,
            }
            for s in summary.per_scenario
        ],
        "phases": [
            {"phase": p.phase, "count": p.count, "total_wall_s": p.total_wall_s}
            for p in summary.phases
        ],
        "slowest": summary.slowest,
        "errors": summary.errors,
        "engine_heap": {
            "runs": summary.heap.runs,
            "max_pending_events": summary.heap.max_pending_events,
            "total_dead_in_queue": summary.heap.total_dead_in_queue,
            "max_dead_in_queue": summary.heap.max_dead_in_queue,
        },
    }


def format_report(summary: JournalSummary) -> str:
    """Human-readable report (the ``greenenvy obs report`` output)."""
    lines: List[str] = []
    lines.append(
        f"journal: {summary.events} events, {summary.runs_finished} runs "
        f"finished, {len(summary.errors)} worker errors"
    )
    lookups = summary.cache_hits + summary.cache_misses
    if lookups:
        lines.append(
            f"cache: {summary.cache_hits}/{lookups} hits "
            f"({100.0 * summary.cache_hit_ratio:.1f}%)"
        )
    else:
        lines.append("cache: not used")

    if summary.per_scenario:
        lines.append("")
        lines.append("== per-scenario wall time ==")
        lines.append(
            format_table(
                ["scenario", "runs", "p50 (s)", "p90 (s)", "max (s)", "sim (s)"],
                [
                    (
                        s.scenario,
                        s.runs,
                        s.p50_wall_s,
                        s.p90_wall_s,
                        s.max_wall_s,
                        s.mean_sim_time_s,
                    )
                    for s in summary.per_scenario
                ],
                float_fmt="{:.4f}",
            )
        )

    if summary.phases:
        lines.append("")
        lines.append("== wall time by phase ==")
        lines.append(
            format_table(
                ["phase", "spans", "total (s)"],
                [(p.phase, p.count, p.total_wall_s) for p in summary.phases],
                float_fmt="{:.4f}",
            )
        )

    if summary.heap.runs:
        lines.append("")
        lines.append("== engine heap ==")
        lines.append(
            f"{summary.heap.runs} sim loops: max pending events "
            f"{summary.heap.max_pending_events}, dead-entry tombstones "
            f"{summary.heap.total_dead_in_queue} total "
            f"(worst run {summary.heap.max_dead_in_queue})"
        )

    if summary.slowest:
        lines.append("")
        lines.append("== slowest runs ==")
        lines.append(
            format_table(
                ["scenario", "seed", "wall (s)", "sim (s)", "energy (J)"],
                [
                    (
                        str(e.get("scenario", "?")),
                        int(e.get("seed", -1)),
                        float(e.get("wall_s", 0.0)),
                        float(e.get("sim_time_s", 0.0)),
                        float(e.get("energy_j", 0.0)),
                    )
                    for e in summary.slowest
                ],
                float_fmt="{:.4f}",
            )
        )

    if summary.errors:
        lines.append("")
        lines.append("== worker errors ==")
        lines.append(
            format_table(
                ["scenario", "seed", "worker", "error"],
                [
                    (
                        str(e.get("scenario", "?")),
                        int(e.get("seed", -1)),
                        int(e.get("worker", -1)),
                        f"{e.get('error_type', '?')}: {e.get('error', '')}",
                    )
                    for e in summary.errors
                ],
            )
        )
        lines.append("")
        lines.append("sweep UNHEALTHY: worker errors recorded")
    if summary.aborted:
        lines.append("")
        reason = summary.abort_reason or "no reason recorded"
        lines.append(
            f"sweep ABORTED mid-run ({reason}): "
            f"{summary.batches_aborted} of {summary.batches_started} "
            f"batch(es) cancelled cooperatively"
        )
    elif not summary.complete:
        lines.append("")
        lines.append(
            f"sweep INCOMPLETE: {summary.batches_started} batch(es) "
            f"started, only {summary.batches_finished} finished "
            f"({summary.runs_in_flight} run(s) still in flight) — the "
            f"coordinator was likely killed before batch_finished"
        )
    return "\n".join(lines)
