"""Live sweep watching: tail a trace directory while the sweep runs.

This is the streaming half of the observability layer (ROADMAP item 5:
"streaming/incremental aggregation so a grid renders partial figures
while running"). Everything here is a *reader* of the trace directory a
:class:`~repro.obs.observer.TracingObserver` populates:

* :class:`JournalTail` — byte-offset tailer of one append-only JSONL
  file; only consumes up to the last committed newline, so a torn,
  in-progress line is never parsed (and never an error).
* :class:`LiveSweepView` — tails the coordinator's ``journal.jsonl``
  *and* the per-worker ``worker-*.jsonl`` partials, deduplicating the
  events the coordinator later merges, and folds everything into a
  :class:`~repro.obs.progress.ProgressTracker`.
* :class:`ProgressServer` — an opt-in stdlib HTTP thread serving
  ``/progress`` (JSON) and ``/metrics`` (Prometheus text) for external
  scrapers.
* :class:`DriftGate` — the incremental ``obs diff``: as scenarios
  *settle* (all their repetitions finished), their metrics are compared
  against a committed baseline; on drift it can pull a cancel cord —
  either an in-process token or the trace directory's abort flag file.

Watching must never change a run. Every class here opens files
read-only; the single deliberate exception is :meth:`DriftGate` /
:func:`request_abort` writing the abort flag file, which is the
documented cooperative-cancellation channel, not hidden feedback —
results that *do* complete are still bit-identical, the sweep just ends
early with :class:`~repro.errors.SweepAbortedError`.

Import note: this module is intentionally *not* re-exported from
``repro.obs`` — it may import nothing from ``repro.harness`` (the
executor imports ``repro.obs.journal``, so a harness import here would
be circular through the package ``__init__``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.baseline import (
    FAIR_SUFFIX,
    DriftRow,
    compare,
    has_regression,
    load_baseline,
    snapshot_from_journal,
)
from repro.obs.journal import ABORT_FILENAME, JOURNAL_FILENAME, WORKER_GLOB
from repro.obs.progress import (
    ProgressTracker,
    SweepProgress,
    progress_to_dict,
    progress_to_registry,
)


def request_abort(trace_dir: Union[str, Path], reason: str) -> Path:
    """Create the trace directory's abort flag file (cooperative stop).

    The running coordinator polls this file between item completions
    (see :class:`repro.harness.executor.FileCancelToken`); creating it
    is how an external watcher cancels a sweep it does not own.
    """
    flag = Path(trace_dir) / ABORT_FILENAME
    flag.write_text(reason + "\n", encoding="utf-8")
    return flag


def _dedup_key(record: Mapping[str, Any]) -> str:
    # Worker events are merged into the coordinator journal verbatim
    # (same sort_keys serialization), so exact content is the identity.
    return json.dumps(record, sort_keys=True)


class JournalTail:
    """Incremental reader of one append-only JSONL file.

    :meth:`poll` returns the records appended since the last call.
    Only bytes up to the last ``"\\n"`` are consumed — a torn final
    line stays in the file for the next poll, once its writer commits
    the newline. A *terminated* line that fails to parse is counted in
    :attr:`bad_lines` and skipped (a tailer cannot raise its producer's
    bugs mid-run; ``obs report`` does the strict post-mortem read).
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.offset = 0
        self.bad_lines = 0

    def poll(self) -> List[Dict[str, Any]]:
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size <= self.offset:
            return []
        with self.path.open("rb") as handle:
            handle.seek(self.offset)
            chunk = handle.read(size - self.offset)
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return []
        committed = chunk[: cut + 1]
        self.offset += cut + 1
        records: List[Dict[str, Any]] = []
        for raw in committed.decode("utf-8", errors="replace").splitlines():
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.bad_lines += 1
                continue
            if isinstance(record, dict) and "event" in record:
                records.append(record)
            else:
                self.bad_lines += 1
        return records


class LiveSweepView:
    """Aggregate a running sweep's journal + worker partials, live.

    The coordinator journals batch/sweep/cache events directly to
    ``journal.jsonl``; pool workers journal run events to their own
    ``worker-<pid>.jsonl``, which the coordinator merges into the main
    journal (and deletes) after the batch. A live reader therefore sees
    most worker events twice. Dedup is by exact record content with the
    coordinator's ``worker`` id (learned from the journal's first
    event) telling the two sources apart:

    * a journal event from a *different* worker is a merged copy — if a
      partial already delivered it, it is dropped; otherwise it counts
      (and is remembered, in case the partial file is read afterwards);
    * a partial event already counted via the merged journal is
      likewise dropped.

    Thread-safe: :meth:`poll` and :meth:`snapshot` take an internal
    lock, so an HTTP server thread can snapshot while the watch loop
    polls.
    """

    def __init__(
        self,
        trace_dir: Union[str, Path],
        tracker: Optional[ProgressTracker] = None,
        on_event: Optional[Callable[[Mapping[str, Any]], None]] = None,
    ):
        self.trace_dir = Path(trace_dir)
        if not self.trace_dir.is_dir():
            raise ObservabilityError(f"no trace directory at {self.trace_dir}")
        self.tracker = tracker if tracker is not None else ProgressTracker()
        self.on_event = on_event
        self._journal = JournalTail(self.trace_dir / JOURNAL_FILENAME)
        self._partials: Dict[str, JournalTail] = {}
        self._coordinator: Optional[int] = None
        self._pending: Dict[str, int] = {}
        self._seen_merged: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.events_seen = 0

    @property
    def bad_lines(self) -> int:
        return self._journal.bad_lines + sum(
            tail.bad_lines for tail in self._partials.values()
        )

    def _consume(self, counter: Dict[str, int], key: str) -> bool:
        """Decrement ``counter[key]`` if positive; True when consumed."""
        count = counter.get(key, 0)
        if count <= 0:
            return False
        if count == 1:
            del counter[key]
        else:
            counter[key] = count - 1
        return True

    def poll(self) -> List[Dict[str, Any]]:
        """Drain new events from every tail, deduplicated and folded."""
        with self._lock:
            fresh: List[Dict[str, Any]] = []
            for record in self._journal.poll():
                worker = record.get("worker")
                if self._coordinator is None and isinstance(worker, int):
                    # The journal's first event (batch/sweep header) is
                    # always coordinator-written.
                    self._coordinator = worker
                if (
                    isinstance(worker, int)
                    and self._coordinator is not None
                    and worker != self._coordinator
                ):
                    key = _dedup_key(record)
                    if self._consume(self._pending, key):
                        continue  # already counted from the partial
                    self._seen_merged[key] = (
                        self._seen_merged.get(key, 0) + 1
                    )
                fresh.append(record)
            for path in sorted(self.trace_dir.glob(WORKER_GLOB)):
                tail = self._partials.get(path.name)
                if tail is None:
                    tail = JournalTail(path)
                    self._partials[path.name] = tail
                for record in tail.poll():
                    key = _dedup_key(record)
                    if self._consume(self._seen_merged, key):
                        continue  # merged copy was counted first
                    self._pending[key] = self._pending.get(key, 0) + 1
                    fresh.append(record)
            self.tracker.observe_all(fresh)
            self.events_seen += len(fresh)
            if self.on_event is not None:
                for record in fresh:
                    self.on_event(record)
            return fresh

    def snapshot(self) -> SweepProgress:
        with self._lock:
            return self.tracker.snapshot()


class DriftGate:
    """Incremental ``obs diff``: gate scenarios as they settle.

    A scenario is *settled* once ``repetitions`` of its runs have been
    seen; from then on its per-scenario means are final and comparable
    against the committed baseline — there is no need to wait for the
    rest of the grid. Savings-vs-fair metrics additionally wait for the
    scenario's ``<prefix>-fair`` sibling to settle.

    Feed it either journal events (:meth:`observe_event`, the external
    ``obs watch`` path — fresh runs only, cache hits carry no metrics)
    or executor results (:meth:`on_result`, the in-process
    ``--abort-on-drift`` path, which sees cached measurements too).
    On the first regression the gate latches :attr:`drifted`, records
    the gating rows, and pulls ``cancel`` (any object with a
    ``cancel(reason)`` method, e.g. a
    :class:`~repro.harness.executor.CancelToken`).
    """

    def __init__(
        self,
        baseline: Union[str, Path, Mapping[str, Any]],
        repetitions: Optional[int] = None,
        tolerances: Optional[Mapping[str, float]] = None,
        cancel: Optional[Any] = None,
        on_drift: Optional[Callable[["DriftGate"], None]] = None,
    ):
        if isinstance(baseline, (str, Path)):
            baseline = load_baseline(baseline)
        self.baseline: Dict[str, Any] = dict(baseline)
        self.repetitions = repetitions
        self.tolerances = dict(tolerances) if tolerances else None
        self.cancel = cancel
        self.on_drift = on_drift
        self.drifted = False
        self.reason: Optional[str] = None
        self.gating_rows: List[DriftRow] = []
        self._runs: Dict[str, List[Dict[str, Any]]] = {}
        self._settled: List[str] = []
        self._lock = threading.Lock()

    @property
    def settled(self) -> List[str]:
        return list(self._settled)

    def observe_event(self, record: Mapping[str, Any]) -> None:
        """Feed one journal event (the tailing path)."""
        event = record.get("event")
        if event == "sweep_started" and self.repetitions is None:
            reps = record.get("repetitions")
            if isinstance(reps, int) and reps > 0:
                self.repetitions = reps
        elif event == "run_finished":
            self._add(
                str(record.get("scenario", "?")),
                {
                    "event": "run_finished",
                    "scenario": record.get("scenario"),
                    "energy_j": record.get("energy_j", 0.0),
                    "sim_time_s": record.get("sim_time_s", 0.0),
                    "counters": record.get("counters") or {},
                    "extras": record.get("extras") or {},
                },
            )

    def on_result(self, index: int, item: Any, measurement: Any) -> None:
        """Feed one executor result (the in-process path)."""
        self._add(
            item.scenario.name,
            {
                "event": "run_finished",
                "scenario": item.scenario.name,
                "energy_j": measurement.energy_j,
                "sim_time_s": measurement.duration_s,
                "counters": measurement.counters(),
                "extras": measurement.extras,
            },
        )

    def _add(self, scenario: str, record: Dict[str, Any]) -> None:
        with self._lock:
            runs = self._runs.setdefault(scenario, [])
            runs.append(record)
            if (
                self.repetitions is not None
                and len(runs) == self.repetitions
                and scenario not in self._settled
            ):
                self._settled.append(scenario)
                self._evaluate()

    def _baseline_subset(self) -> Dict[str, Any]:
        settled = set(self._settled)
        metrics: Dict[str, float] = {}
        for key, value in dict(self.baseline.get("metrics") or {}).items():
            scenario, _, leaf = key.rpartition("/")
            if scenario in ("", "total") or scenario not in settled:
                continue
            if leaf == "savings_vs_fair_percent":
                # Comparable only once the fair sibling settled too.
                fair = scenario.split("-", 1)[0] + FAIR_SUFFIX
                if fair not in settled:
                    continue
            metrics[key] = value
        return {"metrics": metrics}

    def _evaluate(self) -> None:
        # Called with the lock held, each time a scenario settles.
        if self.drifted:
            return
        records = [
            record
            for scenario in self._settled
            for record in self._runs[scenario][: self.repetitions]
        ]
        if not records:
            return
        current = snapshot_from_journal(records)
        rows = compare(
            self._baseline_subset(), current, tolerances=self.tolerances
        )
        # Metrics absent from the baseline ("new") never gate here;
        # "missing" can only mean a settled scenario lost a metric.
        gating = [row for row in rows if row.gating]
        if not has_regression(rows):
            return
        self.drifted = True
        self.gating_rows = gating
        worst = ", ".join(row.key for row in gating[:3])
        extra = "" if len(gating) <= 3 else f" (+{len(gating) - 3} more)"
        self.reason = f"drift vs baseline: {worst}{extra}"
        if self.cancel is not None:
            self.cancel.cancel(self.reason)
        if self.on_drift is not None:
            self.on_drift(self)


class _ProgressHandler(BaseHTTPRequestHandler):
    """Serves the owning :class:`ProgressServer`'s latest snapshot."""

    server: "ProgressServer"  # type: ignore[assignment]

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        path = self.path.split("?", 1)[0]
        try:
            if path in ("/", "/progress"):
                snapshot = self.server.view.snapshot()
                self._send(
                    200,
                    "application/json",
                    json.dumps(progress_to_dict(snapshot), sort_keys=True)
                    + "\n",
                )
            elif path == "/metrics":
                snapshot = self.server.view.snapshot()
                self._send(
                    200,
                    "text/plain; version=0.0.4",
                    progress_to_registry(snapshot).render_prometheus(),
                )
            else:
                self._send(404, "text/plain", "not found\n")
        except BrokenPipeError:  # client went away mid-response
            pass

    def log_message(self, format: str, *args: Any) -> None:
        pass  # a progress endpoint must not spam the watch screen


class ProgressServer(ThreadingHTTPServer):
    """Opt-in HTTP endpoint for a :class:`LiveSweepView`.

    Binds ``host:port`` (``port=0`` picks a free one — the tests use
    that), serves ``/progress`` and ``/metrics`` from a daemon thread,
    and never writes anything: scraping a run cannot change it.
    """

    daemon_threads = True

    def __init__(
        self,
        view: LiveSweepView,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.view = view
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _ProgressHandler)

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    def start(self) -> "ProgressServer":
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="greenenvy-progress-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
