"""``repro.obs`` — structured tracing, metrics, and profiling.

The paper's claims rest on instrumented measurement (RAPL counters,
iperf3 retr columns, per-interval power samples); this package applies
the same discipline to the reproduction's own pipeline. Three layers:

* :mod:`repro.obs.metrics` — an in-process :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms) with Prometheus-text and
  JSON exporters.
* :mod:`repro.obs.journal` — a structured JSONL event stream per sweep
  (``run_started``, ``cache_hit``, ``run_finished``, ``worker_error``,
  ``span``, ...), safe to write from process-pool workers: each worker
  appends to its own file and the coordinator merges them afterwards.
* :mod:`repro.obs.observer` — the :class:`Observer` protocol the
  harness threads through every layer. The base class is a no-op (the
  zero-overhead default); :class:`TracingObserver` journals events,
  keeps metrics, and exports both into a trace directory.
* :mod:`repro.obs.telemetry` / :mod:`repro.obs.timeline` — in-sim time
  series (cwnd, queue depth, instantaneous power...) collected through
  the sim-side :mod:`repro.sim.probe` protocol, persisted as
  ``telemetry.jsonl`` next to the journal, and rendered by
  ``greenenvy obs timeline``.
* :mod:`repro.obs.baseline` — committed snapshots of a sweep's scalar
  outcomes plus the tolerance-aware diff behind ``greenenvy obs diff``,
  the regression gate CI runs.
* :mod:`repro.obs.progress` / :mod:`repro.obs.live` — streaming
  aggregation of a *running* sweep: the incremental progress/ETA model,
  the ``greenenvy obs watch`` view, an opt-in HTTP progress endpoint,
  and the mid-run drift gate. ``live`` is deliberately *not*
  re-exported here — importing it from this package ``__init__`` would
  close a cycle with the harness (which imports ``repro.obs.journal``).

One invariant is non-negotiable and machine-enforced (the
``obs-no-feedback`` simlint rule): observability state never flows
*into* simulation results. ``repro.sim``/``repro.net``/``repro.cc``/
``repro.tcp`` must not import this package; instrumentation lives in
the harness, which observes the simulator from outside.
"""

from __future__ import annotations

from repro.obs.journal import (
    JournalWriter,
    merge_worker_journals,
    read_journal,
    wall_clock,
    worker_id,
)
from repro.obs.metrics import (
    DEFAULT_SPAN_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    JournalObserver,
    Observer,
    Span,
    TracingObserver,
    resolve_observer,
)
from repro.obs.baseline import (
    DriftRow,
    compare,
    format_drift_table,
    has_regression,
    load_baseline,
    save_baseline,
    snapshot_from_journal,
)
from repro.obs.progress import (
    PhaseProgress,
    ProgressTracker,
    ScenarioProgress,
    SweepProgress,
    format_progress,
    progress_to_dict,
    progress_to_registry,
)
from repro.obs.report import (
    JournalSummary,
    format_report,
    summarize_journal,
    summary_to_dict,
)
from repro.obs.telemetry import (
    TELEMETRY_FILENAME,
    TelemetryWriter,
    canonicalize_telemetry,
    merge_worker_telemetry,
    read_telemetry,
    series_from_record,
    telemetry_records,
)
from repro.obs.timeline import (
    filter_records,
    format_timeline,
    timeline_csv,
    timeline_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SPAN_BUCKETS_S",
    "JournalWriter",
    "read_journal",
    "merge_worker_journals",
    "wall_clock",
    "worker_id",
    "Observer",
    "JournalObserver",
    "TracingObserver",
    "Span",
    "NULL_OBSERVER",
    "resolve_observer",
    "ProgressTracker",
    "SweepProgress",
    "ScenarioProgress",
    "PhaseProgress",
    "progress_to_dict",
    "progress_to_registry",
    "format_progress",
    "JournalSummary",
    "summarize_journal",
    "summary_to_dict",
    "format_report",
    "TELEMETRY_FILENAME",
    "TelemetryWriter",
    "telemetry_records",
    "read_telemetry",
    "canonicalize_telemetry",
    "merge_worker_telemetry",
    "series_from_record",
    "filter_records",
    "format_timeline",
    "timeline_csv",
    "timeline_json",
    "DriftRow",
    "snapshot_from_journal",
    "save_baseline",
    "load_baseline",
    "compare",
    "has_regression",
    "format_drift_table",
]
