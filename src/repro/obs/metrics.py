"""In-process metrics: counters, gauges, fixed-bucket histograms.

A tiny, dependency-free subset of the Prometheus data model, enough to
answer the questions the pipeline keeps asking (how many runs, what
cache hit ratio, how is sim-loop wall time distributed) without pulling
in a client library. Metrics are identified by ``(name, labels)`` and
export two ways:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP``/``# TYPE`` + samples), scrape-ready.
* :meth:`MetricsRegistry.to_dict` — a JSON-ready document for tooling.

Everything here is observability state only: nothing in this module may
ever feed back into simulation results (the ``obs-no-feedback`` simlint
rule enforces the import direction).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

#: default histogram buckets for span wall times, in seconds. Spans
#: range from sub-millisecond cache reads to multi-minute grid cells.
DEFAULT_SPAN_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: canonical key of one metric instance: (name, sorted label items)
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

Labels = Optional[Mapping[str, str]]


def _metric_key(name: str, labels: Labels) -> MetricKey:
    if not name or not name.replace("_", "").replace(":", "").isalnum():
        raise ObservabilityError(f"invalid metric name {name!r}")
    if labels is None:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def _escape_label_value(value: str) -> str:
    # Prometheus text exposition: label values escape backslash, the
    # double quote, and line feed (in that order, so escapes introduced
    # here are not re-escaped).
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: MetricKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    items = list(key[1]) + list(extra)
    if not items:
        return key[0]
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return f"{key[0]}{{{body}}}"


class Counter:
    """A monotonically increasing value (events seen, hits, errors)."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = None, help: str = ""):
        self.key = _metric_key(name, labels)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.key[0]} increment must be >= 0, got {amount}"
            )
        self.value += amount

    def samples(self) -> List[Tuple[str, float]]:
        return [(_render_labels(self.key), self.value)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.key[0],
            "kind": self.kind,
            "labels": dict(self.key[1]),
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down (events/sec, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = None, help: str = ""):
        self.key = _metric_key(name, labels)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def samples(self) -> List[Tuple[str, float]]:
        return [(_render_labels(self.key), self.value)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.key[0],
            "kind": self.kind,
            "labels": dict(self.key[1]),
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket distribution of observations (Prometheus semantics).

    ``buckets`` are upper bounds in ascending order; an implicit ``+Inf``
    bucket catches the tail. Bucket counts are cumulative on export,
    exactly like a Prometheus ``_bucket`` series, so existing tooling
    (e.g. ``histogram_quantile``) reads them unchanged.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SPAN_BUCKETS_S,
    ):
        if not buckets or any(
            b <= a for a, b in zip(buckets, list(buckets)[1:])
        ):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be strictly ascending, "
                f"got {buckets}"
            )
        self.key = _metric_key(name, labels)
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def samples(self) -> List[Tuple[str, float]]:
        out: List[Tuple[str, float]] = []
        cumulative = 0
        bucket_key = (f"{self.key[0]}_bucket", self.key[1])
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            out.append(
                (_render_labels(bucket_key, [("le", f"{bound:g}")]), cumulative)
            )
        out.append(
            (_render_labels(bucket_key, [("le", "+Inf")]), self.count)
        )
        out.append((_render_labels((f"{self.key[0]}_sum", self.key[1])), self.sum))
        out.append((_render_labels((f"{self.key[0]}_count", self.key[1])), self.count))
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.key[0],
            "kind": self.kind,
            "labels": dict(self.key[1]),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of metrics, keyed by (name, labels).

    The same name may appear with different label sets (one counter per
    event type, say) but never with two different kinds — asking for a
    gauge where a counter is registered is a bug, not a new metric.
    """

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Metric] = {}
        self._kinds: Dict[str, str] = {}

    def _get_or_create(
        self, cls: type, name: str, labels: Labels, help: str, **kwargs: Any
    ) -> Metric:
        key = _metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != cls.kind:  # type: ignore[attr-defined]
                raise ObservabilityError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        registered_kind = self._kinds.get(name)
        if registered_kind is not None and registered_kind != cls.kind:  # type: ignore[attr-defined]
            raise ObservabilityError(
                f"metric {name!r} already registered as {registered_kind}"
            )
        metric = cls(name, labels=labels, help=help, **kwargs)
        self._metrics[key] = metric
        self._kinds[name] = metric.kind
        return metric

    def counter(self, name: str, labels: Labels = None, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, labels, help)  # type: ignore[return-value]

    def gauge(self, name: str, labels: Labels = None, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        labels: Labels = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SPAN_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, labels, help, buckets=buckets
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    # -- exporters ----------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (scrape-ready)."""
        lines: List[str] = []
        seen_names: set = set()
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            name = key[0]
            if name not in seen_names:
                seen_names.add(name)
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
            for rendered, value in metric.samples():
                lines.append(f"{rendered} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of every metric (schema version 1)."""
        return {
            "version": 1,
            "metrics": [
                self._metrics[key].to_dict() for key in sorted(self._metrics)
            ],
        }
