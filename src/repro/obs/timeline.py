"""Telemetry rendering: what ``greenenvy obs timeline`` prints.

Reads a trace directory's ``telemetry.jsonl`` and renders the per-flow /
per-queue / per-package series as text (a stream index plus sample
tables), CSV (one long-format row per sample), or JSON (the records as
a document). Filters narrow to one scenario, channel, or entity so an
operator can ask exactly the paper's questions — "show me flow 1's cwnd
in the fsti run" — without touching the figure pipelines.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.tables import format_table
from repro.errors import ObservabilityError


def filter_records(
    records: Sequence[Mapping[str, Any]],
    scenario: Optional[str] = None,
    seed: Optional[int] = None,
    channel: Optional[str] = None,
    entity: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Telemetry records matching every given filter (None = any)."""
    out: List[Dict[str, Any]] = []
    for record in records:
        if scenario is not None and record.get("scenario") != scenario:
            continue
        if seed is not None and record.get("seed") != seed:
            continue
        if channel is not None and record.get("channel") != channel:
            continue
        if entity is not None and record.get("entity") != entity:
            continue
        out.append(dict(record))
    return out


def _stream_rows(records: Sequence[Mapping[str, Any]]) -> List[tuple]:
    rows = []
    for record in records:
        times = record.get("times", [])
        values = record.get("values", [])
        rows.append(
            (
                str(record.get("scenario", "?")),
                int(record.get("seed", -1)),
                str(record.get("channel", "?")),
                str(record.get("entity", "?")),
                len(times),
                float(times[0]) if times else 0.0,
                float(times[-1]) if times else 0.0,
                min(values) if values else 0.0,
                max(values) if values else 0.0,
            )
        )
    return rows


def format_timeline(
    records: Sequence[Mapping[str, Any]], samples: int = 0
) -> str:
    """Human-readable telemetry index, optionally with sample tables.

    ``samples`` > 0 additionally prints up to that many evenly-spaced
    (time, value) rows per stream — enough to eyeball a trajectory in a
    terminal without dumping every per-millisecond point.
    """
    if not records:
        raise ObservabilityError("no telemetry records to render")
    lines: List[str] = []
    total = sum(len(r.get("times", [])) for r in records)
    lines.append(f"telemetry: {len(records)} streams, {total} samples")
    lines.append("")
    lines.append(
        format_table(
            [
                "scenario",
                "seed",
                "channel",
                "entity",
                "samples",
                "t0 (s)",
                "t1 (s)",
                "min",
                "max",
            ],
            _stream_rows(records),
            float_fmt="{:.6g}",
        )
    )
    if samples > 0:
        for record in records:
            times = record.get("times", [])
            values = record.get("values", [])
            if not times:
                continue
            lines.append("")
            lines.append(
                f"== {record.get('scenario', '?')} seed={record.get('seed')} "
                f"{record.get('entity', '?')}:{record.get('channel', '?')} =="
            )
            count = min(samples, len(times))
            step = max(1, len(times) // count)
            picked = list(range(0, len(times), step))[:count]
            lines.append(
                format_table(
                    ["t (s)", "value"],
                    [(float(times[i]), float(values[i])) for i in picked],
                    float_fmt="{:.6g}",
                )
            )
    return "\n".join(lines)


def timeline_csv(records: Sequence[Mapping[str, Any]]) -> str:
    """Long-format CSV: one row per sample, ready for pandas/gnuplot."""
    lines = ["scenario,seed,channel,entity,time_s,value"]
    for record in records:
        scenario = str(record.get("scenario", ""))
        seed = record.get("seed", "")
        channel = str(record.get("channel", ""))
        entity = str(record.get("entity", ""))
        for time_s, value in zip(record.get("times", []), record.get("values", [])):
            lines.append(
                f"{scenario},{seed},{channel},{entity},{time_s!r},{value!r}"
            )
    return "\n".join(lines) + "\n"


def timeline_json(records: Sequence[Mapping[str, Any]]) -> str:
    """The records as one indented JSON document."""
    return json.dumps(
        {"version": 1, "streams": [dict(r) for r in records]},
        indent=2,
        sort_keys=True,
    )
