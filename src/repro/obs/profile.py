"""Hot-path profiling: the obs-side half of :mod:`repro.sim.profile`.

The sim layer only ever calls the write-only
:class:`~repro.sim.profile.HotPathProfiler` hooks; this module supplies
the recording implementation and everything downstream of it:

* :class:`ProfileCollector` — accumulates per-key aggregate counts and
  per-stack-path call/self-wall-time totals. Wall-clock reads happen
  here (the journal's blessed ``perf_clock``), and only aggregate
  deltas are kept — never per-event timestamps, and nothing the
  simulation can read back (``obs-profile-no-sim-import`` bans the
  reverse import).
* ``profile.jsonl`` persistence mirroring :mod:`repro.obs.telemetry`:
  one record per (scenario, seed), per-worker partials merged by the
  coordinator, canonical (scenario, seed) order so files from jobs=1
  and jobs=N runs list the same runs in the same order.
* Exporters: folded-stack flamegraph lines, a callgrind file, and a
  Chrome ``traceEvents`` JSON — all rendered from the aggregates, so
  call counts in every format are deterministic (wall times are
  machine-dependent by nature and say so in the record).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.journal import perf_clock
from repro.sim.profile import HotPathProfiler
from repro.units import MILLION

#: filename of the merged profile file inside a trace dir
PROFILE_FILENAME = "profile.jsonl"

#: glob pattern of per-worker profile partials awaiting merge
PROFILE_WORKER_GLOB = "profile-worker-*.jsonl"

#: filenames ``greenenvy obs profile`` exports into the trace dir
FOLDED_FILENAME = "profile.folded"
CALLGRIND_FILENAME = "callgrind.out.greenenvy"
CHROME_TRACE_FILENAME = "profile.trace.json"

#: separator between stack-path components (the folded-stack convention)
STACK_SEP = ";"

#: fields every profile record must carry
_REQUIRED_FIELDS = ("scenario", "seed", "counts", "stack_calls", "stack_wall_s")


class ProfileCollector(HotPathProfiler):
    """Accumulates hot-path aggregates for one run.

    ``enter``/``exit`` maintain a component stack; elapsed wall time is
    attributed as *self* time to whichever stack path was on top, so
    the ``stack_wall_s`` mapping is already in folded-stack form
    (``"sim.dispatch.X;net.queue.enqueue" -> seconds``). ``count``
    feeds plain tallies (per-event-type dispatch counts). Everything
    deterministic — counts and call totals — is a pure function of the
    run; only the wall-time values vary across machines.
    """

    enabled = True

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.stack_calls: Dict[str, int] = {}
        self.stack_wall_s: Dict[str, float] = {}
        self._paths: List[str] = []
        self._last = perf_clock()

    def count(self, key: str, n: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + n

    def enter(self, component: str) -> None:
        now = perf_clock()
        paths = self._paths
        if paths:
            parent = paths[-1]
            self.stack_wall_s[parent] += now - self._last
            path = parent + STACK_SEP + component
        else:
            path = component
        paths.append(path)
        self.stack_calls[path] = self.stack_calls.get(path, 0) + 1
        if path not in self.stack_wall_s:
            self.stack_wall_s[path] = 0.0
        self._last = now

    def exit(self, component: str) -> None:
        now = perf_clock()
        if not self._paths:
            raise ObservabilityError(
                f"profiler exit({component!r}) with empty component stack"
            )
        path = self._paths.pop()
        if path.rsplit(STACK_SEP, 1)[-1] != component:
            raise ObservabilityError(
                f"profiler exit({component!r}) does not match open "
                f"component {path!r}"
            )
        self.stack_wall_s[path] += now - self._last
        self._last = now


def profile_record(
    collector: ProfileCollector, scenario: str, seed: int
) -> Dict[str, Any]:
    """Serialize one run's collected aggregates to a record dict."""
    return {
        "scenario": scenario,
        "seed": seed,
        "counts": dict(sorted(collector.counts.items())),
        "stack_calls": dict(sorted(collector.stack_calls.items())),
        "stack_wall_s": {
            path: round(wall, 9)
            for path, wall in sorted(collector.stack_wall_s.items())
        },
    }


class ProfileWriter:
    """Append-only JSONL writer for profile records, flushed eagerly."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: Optional[IO[str]] = self.path.open("a", encoding="utf-8")
        self.records_written = 0

    def write_record(self, record: Dict[str, Any]) -> None:
        """Append one run's profile record."""
        if self._file is None:
            raise ObservabilityError(f"profile file {self.path} is closed")
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        self.records_written += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "ProfileWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def profile_path(target: Union[str, Path]) -> Path:
    """Resolve a profile argument: a ``.jsonl`` file or a trace dir."""
    path = Path(target)
    if path.is_dir():
        return path / PROFILE_FILENAME
    return path


def read_profile(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a profile JSONL file (or trace directory) into records."""
    resolved = profile_path(path)
    if not resolved.exists():
        raise ObservabilityError(f"no profile at {resolved}")
    records: List[Dict[str, Any]] = []
    with resolved.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ObservabilityError(
                    f"{resolved}:{lineno}: bad profile line: {exc}"
                ) from exc
            if not isinstance(record, dict) or not all(
                field_name in record for field_name in _REQUIRED_FIELDS
            ):
                raise ObservabilityError(
                    f"{resolved}:{lineno}: profile record lacks one of "
                    f"{', '.join(_REQUIRED_FIELDS)}"
                )
            records.append(record)
    return records


def _merge_sort_key(record: Dict[str, Any]):
    return (str(record.get("scenario", "")), record.get("seed", 0))


def canonicalize_profile(path: Union[str, Path]) -> int:
    """Rewrite a profile file in (scenario, seed) order.

    Mirrors :func:`repro.obs.telemetry.canonicalize_telemetry`: the
    closed file lists runs independently of jobs= and completion order.
    Returns the record count; a missing file is a no-op (zero).
    """
    resolved = profile_path(path)
    if not resolved.exists():
        return 0
    records = sorted(read_profile(resolved), key=_merge_sort_key)
    resolved.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
        encoding="utf-8",
    )
    return len(records)


def merge_worker_profiles(
    trace_dir: Union[str, Path],
    into: Optional[ProfileWriter] = None,
    remove_partials: bool = True,
) -> List[Dict[str, Any]]:
    """Merge per-worker profile partials into deterministic order.

    Reads every ``profile-worker-*.jsonl`` under ``trace_dir``, sorts
    records by (scenario, seed), appends them to ``into`` (when given),
    deletes the partials, and returns the merged records.
    """
    root = Path(trace_dir)
    merged: List[Dict[str, Any]] = []
    partials = sorted(root.glob(PROFILE_WORKER_GLOB))
    for partial in partials:
        merged.extend(read_profile(partial))
    merged.sort(key=_merge_sort_key)
    if into is not None:
        for record in merged:
            into.write_record(record)
    if remove_partials:
        for partial in partials:
            partial.unlink()
    return merged


# -- aggregation -------------------------------------------------------


@dataclass
class ProfileAggregate:
    """Sum of many runs' profile records (what the exporters render).

    ``counts`` and ``stack_calls`` are exact integer sums — identical
    whatever jobs= produced the records; ``stack_wall_s`` sums the
    machine-dependent self times.
    """

    counts: Dict[str, int] = field(default_factory=dict)
    stack_calls: Dict[str, int] = field(default_factory=dict)
    stack_wall_s: Dict[str, float] = field(default_factory=dict)
    runs: int = 0

    def fold(self, record: Dict[str, Any]) -> None:
        """Add one profile record into the aggregate."""
        for key, n in record["counts"].items():
            self.counts[key] = self.counts.get(key, 0) + int(n)
        for path, n in record["stack_calls"].items():
            self.stack_calls[path] = self.stack_calls.get(path, 0) + int(n)
        for path, wall in record["stack_wall_s"].items():
            self.stack_wall_s[path] = self.stack_wall_s.get(path, 0.0) + float(
                wall
            )
        self.runs += 1

    @property
    def total_wall_s(self) -> float:
        """Total profiled self time across every stack path."""
        return sum(self.stack_wall_s.values())


def aggregate_profiles(records: Iterable[Dict[str, Any]]) -> ProfileAggregate:
    """Fold profile records (e.g. a whole sweep's) into one aggregate."""
    aggregate = ProfileAggregate()
    for record in records:
        aggregate.fold(record)
    return aggregate


def _inclusive_us(aggregate: ProfileAggregate) -> Dict[str, int]:
    """Per-path inclusive microseconds: self plus every descendant."""
    inclusive: Dict[str, int] = {
        path: int(round(wall * MILLION))
        for path, wall in aggregate.stack_wall_s.items()
    }
    # Longest paths first, so each child has already absorbed its own
    # subtree by the time it is added to its parent.
    for path in sorted(
        inclusive, key=lambda p: p.count(STACK_SEP), reverse=True
    ):
        if STACK_SEP in path:
            parent = path.rsplit(STACK_SEP, 1)[0]
            inclusive[parent] = inclusive.get(parent, 0) + inclusive[path]
    return inclusive


# -- exporters ---------------------------------------------------------


def render_folded(aggregate: ProfileAggregate) -> str:
    """The flamegraph.pl input format: ``comp1;comp2 <self-µs>``.

    Zero-weight paths keep a line (weight 0) so the stack *shape* is
    identical across machines even when a fast box rounds a path's
    self time down to nothing.
    """
    lines = [
        f"{path} {int(round(wall * MILLION))}"
        for path, wall in sorted(aggregate.stack_wall_s.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def render_callgrind(aggregate: ProfileAggregate) -> str:
    """A callgrind-format profile: per-function self cost + call edges.

    Two event types per cost line: self wall microseconds and call
    count. Call edges carry the callee's inclusive cost, which is what
    kcachegrind renders as the call graph.
    """
    self_us: Dict[str, int] = {}
    fn_calls: Dict[str, int] = {}
    edges: Dict[Tuple[str, str], Dict[str, int]] = {}
    inclusive = _inclusive_us(aggregate)
    for path, wall in aggregate.stack_wall_s.items():
        parts = path.split(STACK_SEP)
        leaf = parts[-1]
        self_us[leaf] = self_us.get(leaf, 0) + int(round(wall * MILLION))
        calls = aggregate.stack_calls.get(path, 0)
        fn_calls[leaf] = fn_calls.get(leaf, 0) + calls
        if len(parts) > 1:
            edge = (parts[-2], leaf)
            stats = edges.setdefault(edge, {"calls": 0, "inclusive_us": 0})
            stats["calls"] += calls
            stats["inclusive_us"] += inclusive[path]
    out = [
        "# callgrind format",
        "version: 1",
        "creator: greenenvy obs profile",
        "events: WallUs Calls",
        "",
    ]
    for fn in sorted(self_us):
        out.append(f"fn={fn}")
        out.append(f"0 {self_us[fn]} {fn_calls[fn]}")
        for (caller, callee), stats in sorted(edges.items()):
            if caller != fn:
                continue
            out.append(f"cfn={callee}")
            out.append(f"calls={stats['calls']} 0")
            out.append(f"0 {stats['inclusive_us']} {stats['calls']}")
        out.append("")
    return "\n".join(out)


def render_chrome_trace(aggregate: ProfileAggregate) -> Dict[str, Any]:
    """A Chrome ``traceEvents`` object laid out from the aggregates.

    The profiler keeps only aggregate deltas, so this is a *synthetic*
    timeline: every stack path becomes one complete ("X") slice whose
    duration is its inclusive time, children nested inside their
    parent in component-name order. Proportions and nesting match the
    real run; absolute positions do not claim to.
    """
    inclusive = _inclusive_us(aggregate)
    children: Dict[str, List[str]] = {}
    roots: List[str] = []
    for path in inclusive:
        if STACK_SEP in path:
            parent = path.rsplit(STACK_SEP, 1)[0]
            children.setdefault(parent, []).append(path)
        else:
            roots.append(path)
    events: List[Dict[str, Any]] = []

    def _layout(path: str, start_us: int) -> None:
        events.append(
            {
                "name": path.rsplit(STACK_SEP, 1)[-1],
                "cat": "sim",
                "ph": "X",
                "ts": start_us,
                "dur": inclusive[path],
                "pid": 1,
                "tid": 1,
                "args": {"calls": aggregate.stack_calls.get(path, 0)},
            }
        )
        cursor = start_us
        for child in sorted(children.get(path, [])):
            _layout(child, cursor)
            cursor += inclusive[child]

    cursor = 0
    for root in sorted(roots):
        _layout(root, cursor)
        cursor += inclusive[root]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"runs": aggregate.runs, "source": "greenenvy"},
    }


def export_profile(
    trace_dir: Union[str, Path],
    records: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Path]:
    """Render every export format from a trace dir's profile records.

    Writes ``profile.folded``, ``callgrind.out.greenenvy`` and
    ``profile.trace.json`` next to ``profile.jsonl`` and returns the
    paths keyed by format name.
    """
    root = Path(trace_dir)
    if records is None:
        records = read_profile(root)
    aggregate = aggregate_profiles(records)
    folded = root / FOLDED_FILENAME
    folded.write_text(render_folded(aggregate), encoding="utf-8")
    callgrind = root / CALLGRIND_FILENAME
    callgrind.write_text(render_callgrind(aggregate), encoding="utf-8")
    chrome = root / CHROME_TRACE_FILENAME
    chrome.write_text(
        json.dumps(render_chrome_trace(aggregate), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return {"folded": folded, "callgrind": callgrind, "chrome": chrome}


def summarize_profile(records: List[Dict[str, Any]], top: int = 10) -> str:
    """A text summary for ``obs report``: hottest components by self time."""
    aggregate = aggregate_profiles(records)
    if not aggregate.stack_wall_s:
        return "profile: no records"
    total = aggregate.total_wall_s or 1.0
    # Fold stack paths down to their leaf component for the summary.
    by_leaf: Dict[str, Tuple[float, int]] = {}
    for path, wall in aggregate.stack_wall_s.items():
        leaf = path.rsplit(STACK_SEP, 1)[-1]
        prev_wall, prev_calls = by_leaf.get(leaf, (0.0, 0))
        by_leaf[leaf] = (
            prev_wall + wall,
            prev_calls + aggregate.stack_calls.get(path, 0),
        )
    ranked = sorted(by_leaf.items(), key=lambda kv: (-kv[1][0], kv[0]))[:top]
    lines = [
        f"profile: {aggregate.runs} runs, "
        f"{aggregate.total_wall_s:.3f}s profiled self time"
    ]
    for leaf, (wall, calls) in ranked:
        lines.append(
            f"  {leaf:<44} {wall:>9.4f}s  {100.0 * wall / total:>5.1f}%  "
            f"{calls:>10} calls"
        )
    return "\n".join(lines)
