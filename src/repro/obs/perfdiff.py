"""Perf snapshots and the events/sec regression gate.

``benchmarks/BENCH_sim.json`` and ``benchmarks/BENCH_fabric.json`` are
the committed perf reference points the ROADMAP's engine-speed goal is
measured against. This module owns both halves of their lifecycle:

* **snapshot** — run the canonical sweep (the exact scenario set the
  obs-diff gates replay) under a recording observer and capture the
  ``sim_events_per_second`` gauges plus wall times. ``best_of`` runs
  the sweep N times and keeps the fastest attempt (min wall time, max
  events/sec), the standard noise-suppression for wall benchmarks.
* **diff** — compare a fresh snapshot against the committed file with
  per-metric relative tolerances. Only throughput metrics *gate*
  (``greenenvy obs perf-diff`` exits nonzero on an events/sec
  regression beyond tolerance, exactly how ``obs diff`` gates metric
  drift); wall times are reported as context, since they are
  machine-dependent by nature.

``benchmarks/bench_sim.py`` / ``bench_fabric.py`` are thin wrappers
over the snapshot half, so the CLI gate and ``make bench-all`` can
never drift apart from what the committed files contain.
"""

from __future__ import annotations

import json
import platform
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.journal import perf_clock
from repro.obs.observer import Observer, Span

SNAPSHOT_VERSION = 1

#: committed snapshot filenames under benchmarks/
BENCH_SIM_FILENAME = "BENCH_sim.json"
BENCH_FABRIC_FILENAME = "BENCH_fabric.json"

#: the canonical sweeps; keep in lockstep with BASELINE_SWEEP /
#: FABRIC_SWEEP in the Makefile (the obs-diff gates replay the same)
SIM_SWEEP: Dict[str, Any] = {"transfer_bytes": 400_000, "repetitions": 2}
FABRIC_SWEEP: Dict[str, Any] = {
    "n_flows": 1000,
    "ccas": ("dctcp", "dcqcn"),
    "mix": "rpc",
}

#: default relative tolerance before an events/sec drop gates; wide on
#: purpose — shared CI runners jitter far more than a dev box
DEFAULT_PERF_REL_TOL = 0.5

#: snapshot metrics the gate compares (higher is better); anything
#: else in the snapshot is context, not a gate
GATED_METRICS = ("events_per_second.median", "events_per_second.min")

#: wall-time metrics reported alongside, never gating
CONTEXT_METRICS = ("sim_loop_wall_s.total", "sweep_wall_s")


class _TimedSpan(Span):
    def __init__(self, recorder: "PerfRecorder", phase: str):
        self._recorder = recorder
        self._phase = phase
        self.wall_s = 0.0
        self._t0 = 0.0

    def add(self, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_TimedSpan":
        self._t0 = perf_clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.wall_s = perf_clock() - self._t0
        if self._phase == "sim_loop":
            self._recorder.loop_wall_s.append(self.wall_s)


class PerfRecorder(Observer):
    """In-memory observer: per-run events/sec gauges and loop spans."""

    enabled = True

    def __init__(self) -> None:
        self.events_per_second: List[float] = []
        self.loop_wall_s: List[float] = []

    def span(self, phase: str, **fields: Any) -> Span:
        return _TimedSpan(self, phase)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if name == "sim_events_per_second":
            self.events_per_second.append(value)


def _stats(values: List[float]) -> Dict[str, float]:
    return {
        "min": round(min(values), 1),
        "median": round(statistics.median(values), 1),
        "max": round(max(values), 1),
    }


def _snapshot_payload(
    sweep: str, recorder: PerfRecorder, wall_s: float, attempts: int
) -> Dict[str, Any]:
    return {
        "version": SNAPSHOT_VERSION,
        "sweep": sweep,
        "attempts": attempts,
        "runs": len(recorder.events_per_second),
        "events_per_second": _stats(recorder.events_per_second),
        "sim_loop_wall_s": {
            "total": round(sum(recorder.loop_wall_s), 3),
            "median": round(statistics.median(recorder.loop_wall_s), 4),
        },
        "sweep_wall_s": round(wall_s, 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def _best_attempt(attempts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Min-of-N selection: the attempt with the best median events/sec.

    Wall benchmarks only ever get *slower* from interference, so the
    fastest attempt is the closest estimate of the machine's capability
    — the min-of-N idiom wall-time suites use, applied to its
    reciprocal.
    """
    best = max(
        attempts, key=lambda payload: payload["events_per_second"]["median"]
    )
    best["attempts"] = len(attempts)
    return best


def sim_snapshot(best_of: int = 1) -> Dict[str, Any]:
    """Snapshot the canonical fig1 sweep (``BENCH_sim.json``)."""
    from repro.figures.fig1 import run_fig1  # lazy: figures build on obs

    if best_of < 1:
        raise ObservabilityError(f"best_of must be >= 1, got {best_of}")
    sweep = (
        f"fig1 --bytes {SIM_SWEEP['transfer_bytes']} "
        f"--reps {SIM_SWEEP['repetitions']}"
    )
    attempts = []
    for _attempt in range(best_of):
        recorder = PerfRecorder()
        wall0 = perf_clock()
        run_fig1(
            transfer_bytes=SIM_SWEEP["transfer_bytes"],
            repetitions=SIM_SWEEP["repetitions"],
            observer=recorder,
        )
        attempts.append(
            _snapshot_payload(sweep, recorder, perf_clock() - wall0, best_of)
        )
    return _best_attempt(attempts)


def fabric_snapshot(best_of: int = 1) -> Dict[str, Any]:
    """Snapshot the 1k-flow leaf-spine sweep (``BENCH_fabric.json``)."""
    from repro.figures.fabric import run_fabric_figure  # lazy, as above

    if best_of < 1:
        raise ObservabilityError(f"best_of must be >= 1, got {best_of}")
    sweep = (
        f"fabric --flows {FABRIC_SWEEP['n_flows']} "
        f"--ccas {','.join(FABRIC_SWEEP['ccas'])} "
        f"--mix {FABRIC_SWEEP['mix']}"
    )
    attempts = []
    for _attempt in range(best_of):
        recorder = PerfRecorder()
        wall0 = perf_clock()
        run_fabric_figure(
            ccas=FABRIC_SWEEP["ccas"],
            n_flows=FABRIC_SWEEP["n_flows"],
            mix=FABRIC_SWEEP["mix"],
            observer=recorder,
        )
        attempts.append(
            _snapshot_payload(sweep, recorder, perf_clock() - wall0, best_of)
        )
    return _best_attempt(attempts)


_SNAPSHOT_KINDS = {"sim": sim_snapshot, "fabric": fabric_snapshot}


def perf_snapshot(kind: str, best_of: int = 1) -> Dict[str, Any]:
    """Snapshot one canonical sweep by kind (``sim`` or ``fabric``)."""
    try:
        taker = _SNAPSHOT_KINDS[kind]
    except KeyError:
        raise ObservabilityError(
            f"unknown perf snapshot kind {kind!r}; "
            f"use {', '.join(sorted(_SNAPSHOT_KINDS))}"
        ) from None
    return taker(best_of=best_of)


def save_snapshot(payload: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a snapshot as deterministic, committed-diff-friendly JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def load_snapshot(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a committed snapshot file."""
    target = Path(path)
    if not target.exists():
        raise ObservabilityError(f"no perf snapshot at {target}")
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ObservabilityError(f"{target}: bad snapshot JSON: {exc}") from exc
    if not isinstance(payload, dict) or "events_per_second" not in payload:
        raise ObservabilityError(
            f"{target}: not a perf snapshot (missing events_per_second)"
        )
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise ObservabilityError(
            f"{target}: snapshot version {version!r}, expected "
            f"{SNAPSHOT_VERSION}"
        )
    return payload


# -- comparison --------------------------------------------------------


@dataclass(frozen=True)
class PerfDriftRow:
    """One metric's base-vs-fresh comparison."""

    metric: str
    base: float
    fresh: float
    change_percent: float
    rel_tol: float
    #: ``ok`` / ``improved`` / ``regressed`` for gated metrics;
    #: ``context`` for wall times that never gate
    status: str

    @property
    def gates(self) -> bool:
        return self.status == "regressed"


def _lookup(payload: Mapping[str, Any], dotted: str) -> Optional[float]:
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def compare_perf(
    base: Mapping[str, Any],
    fresh: Mapping[str, Any],
    tolerances: Optional[Mapping[str, float]] = None,
    default_rel_tol: float = DEFAULT_PERF_REL_TOL,
) -> List[PerfDriftRow]:
    """Diff a fresh snapshot against the committed reference.

    Gated metrics are one-sided: a drop beyond tolerance is
    ``regressed``, a rise beyond it is ``improved`` (never gates — a
    faster engine should update the snapshot, not fail CI). The sweeps
    must match: comparing different scenario sets is a category error,
    not a drift.
    """
    if base.get("sweep") != fresh.get("sweep"):
        raise ObservabilityError(
            f"sweep mismatch: baseline ran {base.get('sweep')!r}, fresh ran "
            f"{fresh.get('sweep')!r}; regenerate the snapshot"
        )
    tols = dict(tolerances or {})
    rows: List[PerfDriftRow] = []
    for metric in GATED_METRICS:
        base_value = _lookup(base, metric)
        fresh_value = _lookup(fresh, metric)
        if base_value is None or fresh_value is None or base_value <= 0:
            continue
        rel_tol = tols.get(metric, default_rel_tol)
        change = (fresh_value - base_value) / base_value
        if change < -rel_tol:
            status = "regressed"
        elif change > rel_tol:
            status = "improved"
        else:
            status = "ok"
        rows.append(
            PerfDriftRow(
                metric=metric,
                base=base_value,
                fresh=fresh_value,
                change_percent=100.0 * change,
                rel_tol=rel_tol,
                status=status,
            )
        )
    for metric in CONTEXT_METRICS:
        base_value = _lookup(base, metric)
        fresh_value = _lookup(fresh, metric)
        if base_value is None or fresh_value is None or base_value <= 0:
            continue
        rows.append(
            PerfDriftRow(
                metric=metric,
                base=base_value,
                fresh=fresh_value,
                change_percent=100.0 * (fresh_value - base_value) / base_value,
                rel_tol=0.0,
                status="context",
            )
        )
    if not any(row.status != "context" for row in rows):
        raise ObservabilityError(
            "no gated metrics in common between baseline and fresh snapshot"
        )
    return rows


def has_perf_regression(rows: List[PerfDriftRow]) -> bool:
    """Whether any gated metric regressed beyond tolerance."""
    return any(row.gates for row in rows)


def format_perf_table(rows: List[PerfDriftRow]) -> str:
    """The comparison as the same text-table shape ``obs diff`` prints."""
    from repro.analysis.tables import format_table

    body = format_table(
        ["metric", "baseline", "fresh", "change %", "tol %", "status"],
        [
            (
                row.metric,
                row.base,
                row.fresh,
                row.change_percent,
                100.0 * row.rel_tol if row.status != "context" else "-",
                row.status,
            )
            for row in rows
        ],
        float_fmt="{:.1f}",
    )
    verdict = (
        "PERF REGRESSION" if has_perf_regression(rows) else "perf within tolerance"
    )
    return body + "\n" + verdict
