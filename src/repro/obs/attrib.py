"""Per-flow energy attribution: which flows burn the joules.

The paper's §4 argument is that *when* flows run decides what the
fleet pays — an unfair full-speed-then-idle allocation shortens active
periods and saves energy. This module makes that visible per flow: it
splits a run's measured joules (host CPU plus switch ports for fabric
runs, via :class:`~repro.energy.fleet.FleetEnergyReport` totals) across
concurrent flows by throughput share on virtual-time windows.

The ledger is a pure post-run computation over a
:class:`~repro.harness.runner.RunMeasurement` — it never touches the
simulation (``obs-profile-no-sim-import`` bans the reverse import):

1. flow start/end times tile the measurement window into maximal
   intervals on which the set of active flows is constant;
2. each window carries energy proportional to its share of the
   measured duration;
3. a window's energy splits across its active flows proportionally to
   their mean transfer rate; windows with no active flow accrue to the
   ``idle`` pseudo-entity.

Every split assigns the final share by residual, so the attributed
joules sum to the measured total *exactly* (the energy-additivity
property test holds this to 1e-9). Results persist as one
``flow_energy_j`` telemetry sample per entity, stamped with virtual
time like every other probe channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.sim.probe import ProbeSink

if TYPE_CHECKING:
    from repro.harness.runner import RunMeasurement

#: telemetry channel carrying one attributed-joules sample per entity
FLOW_ENERGY_CHANNEL = "flow_energy_j"

#: the pseudo-entity windows with no active flow accrue to
IDLE_ENTITY = "idle"

#: guards rate computation for degenerate zero-duration flows
_FLOW_DURATION_EPS = 1e-12


@dataclass(frozen=True)
class FlowActivity:
    """One flow's active interval and bytes moved, for attribution."""

    entity: str
    start_s: float
    end_s: float
    transferred_bytes: int

    @property
    def rate_weight(self) -> float:
        """Mean transfer rate (the throughput-share weight)."""
        duration = max(self.end_s - self.start_s, _FLOW_DURATION_EPS)
        return self.transferred_bytes / duration


def measurement_activities(
    measurement: "RunMeasurement",
) -> List[FlowActivity]:
    """The measurement's flows as attribution inputs, id-ordered."""
    return [
        FlowActivity(
            entity=f"flow-{result.flow_id}",
            start_s=result.start_time,
            end_s=result.end_time,
            transferred_bytes=result.bytes_transferred,
        )
        for result in sorted(
            measurement.flow_results, key=lambda r: r.flow_id
        )
    ]


def attribute_energy(
    activities: Sequence[FlowActivity],
    total_energy_j: float,
    duration_s: float,
) -> Dict[str, float]:
    """Split ``total_energy_j`` across flows by windowed throughput share.

    Returns joules per entity (plus :data:`IDLE_ENTITY`); values sum to
    ``total_energy_j`` exactly — every window's last share and the last
    window's energy are assigned by residual rather than recomputed, so
    no floating-point drift accumulates.
    """
    if duration_s <= 0:
        raise ObservabilityError(
            f"cannot attribute energy over a {duration_s}s window"
        )
    result: Dict[str, float] = {a.entity: 0.0 for a in activities}
    if len(result) != len(activities):
        raise ObservabilityError("duplicate flow entities in attribution")
    result[IDLE_ENTITY] = 0.0

    bounds = {0.0, duration_s}
    for activity in activities:
        bounds.add(min(max(activity.start_s, 0.0), duration_s))
        bounds.add(min(max(activity.end_s, 0.0), duration_s))
    edges = sorted(bounds)

    remaining = total_energy_j
    for i in range(len(edges) - 1):
        t0, t1 = edges[i], edges[i + 1]
        if t1 <= t0:
            continue
        if i == len(edges) - 2:
            window_j = remaining  # the residual: windows sum exactly
        else:
            window_j = total_energy_j * (t1 - t0) / duration_s
            remaining -= window_j
        active = [
            a for a in activities if a.start_s < t1 and a.end_s > t0
        ]
        if not active:
            result[IDLE_ENTITY] += window_j
            continue
        weight_sum = sum(a.rate_weight for a in active)
        assigned = 0.0
        for activity in active[:-1]:
            if weight_sum > 0:
                share = activity.rate_weight / weight_sum
            else:
                share = 1.0 / len(active)  # zero-byte flows split evenly
            share_j = window_j * share
            result[activity.entity] += share_j
            assigned += share_j
        result[active[-1].entity] += window_j - assigned
    return result


def attribute_measurement(measurement: "RunMeasurement") -> Dict[str, float]:
    """Per-entity joules for one run's measured total.

    For fabric runs ``measurement.energy_j`` is already the
    :class:`~repro.energy.fleet.FleetEnergyReport` fleet total (host
    CPUs plus switches), so the ledger covers both pools; the
    ``host_energy_j``/``switch_energy_j`` extras scale any entity's
    share into its per-pool split (shares are pool-independent).
    """
    return attribute_energy(
        measurement_activities(measurement),
        total_energy_j=measurement.energy_j,
        duration_s=measurement.duration_s,
    )


def record_flow_energy(
    sink: ProbeSink, measurement: "RunMeasurement"
) -> None:
    """Persist a run's attribution ledger into its telemetry sink.

    One ``flow_energy_j`` sample per entity, stamped with the end of
    the measurement window (virtual time, like every probe sample).
    No-op for disabled sinks and zero-length windows.
    """
    if not sink.enabled or measurement.duration_s <= 0:
        return
    attribution = attribute_measurement(measurement)
    for entity in sorted(attribution):
        sink.sample(
            measurement.duration_s,
            FLOW_ENERGY_CHANNEL,
            entity,
            attribution[entity],
        )


def top_energy_flows(
    attribution: Dict[str, float], top: int = 5
) -> List[Tuple[str, float, float]]:
    """The ``top`` hungriest entities as (entity, joules, share-percent).

    The idle bucket competes like any flow — an idle-dominated run
    *should* show ``idle`` on top; that is the paper's §4 story.
    """
    total = sum(attribution.values())
    if total <= 0:
        return []
    ranked = sorted(attribution.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        (entity, joules, 100.0 * joules / total)
        for entity, joules in ranked[:top]
    ]


def top_flow_share_percent(measurement: "RunMeasurement") -> float:
    """Share of a run's energy attributed to its hungriest *flow*.

    Excludes the idle bucket: this is the figure-table number that
    shows how concentrated a policy leaves the energy bill (a
    serialized schedule concentrates it; fair sharing flattens it).
    """
    attribution = attribute_measurement(measurement)
    attribution.pop(IDLE_ENTITY, None)
    total = measurement.energy_j
    if total <= 0 or not attribution:
        return 0.0
    return 100.0 * max(attribution.values()) / total


def summarize_flow_energy(
    records: Sequence[Dict[str, object]], top: int = 5
) -> str:
    """The ``obs report`` view: hungriest entities across a whole trace.

    Sums each entity's attributed joules over every run in the
    telemetry file and ranks the ``top``; empty string when the trace
    carries no attribution samples (telemetry recorded without flows,
    or an older trace).
    """
    ledgers = attribution_from_telemetry(records)
    if not ledgers:
        return ""
    totals: Dict[str, float] = {}
    for ledger in ledgers.values():
        for entity, joules in ledger.items():
            totals[entity] = totals.get(entity, 0.0) + joules
    ranked = top_energy_flows(totals, top=top)
    lines = [
        f"energy attribution: {len(ledgers)} runs, "
        f"{sum(totals.values()):.3f} J attributed"
    ]
    for entity, joules, share in ranked:
        lines.append(f"  {entity:<24} {joules:>10.4f} J  {share:>5.1f}%")
    return "\n".join(lines)


def attribution_from_telemetry(
    records: Sequence[Dict[str, object]],
) -> Dict[Tuple[str, int], Dict[str, float]]:
    """Rebuild per-run attribution ledgers from telemetry records.

    Filters a telemetry file's records down to the
    :data:`FLOW_ENERGY_CHANNEL` samples and groups them by
    (scenario, seed); each entity's ledger value is its final sample.
    """
    ledgers: Dict[Tuple[str, int], Dict[str, float]] = {}
    for record in records:
        if record.get("channel") != FLOW_ENERGY_CHANNEL:
            continue
        values = record.get("values") or []
        if not isinstance(values, list) or not values:
            continue
        key = (str(record.get("scenario", "")), int(record.get("seed", 0)))  # type: ignore[call-overload]
        ledgers.setdefault(key, {})[str(record.get("entity", ""))] = float(
            values[-1]  # type: ignore[arg-type]
        )
    return ledgers
