"""Structured JSONL run journal: one event stream per sweep.

Every event is one JSON object per line with at least::

    {"event": "run_started", "t_wall": 1723.201, "worker": 4021, ...}

``t_wall`` is a wall-clock timestamp and ``worker`` the emitting
process id — *diagnostic* fields only, excluded from any determinism
contract. Everything else on an event (scenario name, seed, cache key,
item index, simulated duration, measurement counters) is a pure
function of the work item and therefore identical between ``jobs=1``
and ``jobs=N`` runs; ``tests/harness/test_trace_determinism.py`` holds
the pipeline to that.

Process-pool safety: workers never share a file. Each worker process
appends to its own ``worker-<pid>.jsonl`` inside the trace directory
and the coordinator merges the partials into the main ``journal.jsonl``
after the batch, ordered by work-item index (stable within an item).
Results never flow through the journal, so determinism of measurements
is untouched whether tracing is on or off.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

from repro.errors import ObservabilityError

#: canonical event names emitted by the pipeline (extras are allowed;
#: the report treats unknown events as opaque)
EVENT_NAMES = (
    "sweep_started",
    "sweep_finished",
    "batch_started",
    "batch_finished",
    "batch_aborted",
    "sweep_aborted",
    "cache_hit",
    "cache_miss",
    "run_started",
    "run_finished",
    "worker_error",
    "span",
)

#: filename of the coordinator's merged journal inside a trace dir
JOURNAL_FILENAME = "journal.jsonl"

#: glob pattern of per-worker partial journals awaiting merge
WORKER_GLOB = "worker-*.jsonl"

#: flag file inside a trace dir requesting a cooperative sweep abort;
#: the coordinator polls it between item completions (see
#: :class:`repro.harness.executor.FileCancelToken`), and external
#: watchers (``greenenvy obs watch --abort-on-drift``) create it
ABORT_FILENAME = "abort.requested"

#: event fields that are diagnostic (wall clock / process identity) and
#: therefore excluded from determinism comparisons
VOLATILE_FIELDS = frozenset({"t_wall", "worker", "wall_s", "events_per_s"})


def wall_clock() -> float:
    """Wall-clock timestamp for journal events.

    Isolated here so the determinism lint rule is suppressed exactly
    once: journal timestamps are diagnostics and never reach results.
    """
    return time.time()  # simlint: ignore[det-wall-clock] -- journal timestamps are diagnostics, never results


def perf_clock() -> float:
    """Monotonic wall clock for span durations (same isolation)."""
    return time.perf_counter()  # simlint: ignore[det-wall-clock] -- span timing is diagnostics, never results


def worker_id() -> int:
    """The emitting process id, recorded on every journal event.

    Diagnostic only: it answers "which worker ran this" in a trace but
    must never reach a cache key, a seed, or a measurement (that is what
    ``det-process-identity`` polices everywhere else).
    """
    return os.getpid()  # simlint: ignore[det-process-identity] -- journal diagnostics, never in results


class JournalWriter:
    """Append-only JSONL writer, one line per event, flushed eagerly.

    Eager flushing means a crashed worker still leaves every completed
    event on disk — exactly the runs you want to see when a sweep dies.
    """

    def __init__(self, path: Union[str, Path], worker: Optional[int] = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.worker = worker_id() if worker is None else worker
        self._file: Optional[IO[str]] = self.path.open("a", encoding="utf-8")
        self.events_written = 0

    def write(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the record as written."""
        if self._file is None:
            raise ObservabilityError(f"journal {self.path} is closed")
        record: Dict[str, Any] = {
            "event": event,
            "t_wall": wall_clock(),
            "worker": self.worker,
        }
        record.update(fields)
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        self.events_written += 1
        return record

    def write_record(self, record: Dict[str, Any]) -> None:
        """Append an already-built record verbatim (used by the merge)."""
        if self._file is None:
            raise ObservabilityError(f"journal {self.path} is closed")
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def journal_path(target: Union[str, Path]) -> Path:
    """Resolve a journal argument: a ``.jsonl`` file or a trace dir."""
    path = Path(target)
    if path.is_dir():
        return path / JOURNAL_FILENAME
    return path


def read_journal(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL journal (or trace directory) into event dicts.

    Safe to call while a sweep is still writing: the writer appends
    each record plus its newline in a single buffered write, so a final
    line with no terminating newline is a write in progress — it is
    skipped, not an error. A *terminated* line that fails to parse
    still raises :class:`ObservabilityError` with its location, because
    that means corruption rather than tailing.
    """
    resolved = journal_path(path)
    if not resolved.exists():
        raise ObservabilityError(f"no journal at {resolved}")
    events: List[Dict[str, Any]] = []
    with resolved.open("r", encoding="utf-8") as handle:
        raw_lines = handle.readlines()
    for lineno, raw in enumerate(raw_lines, start=1):
        if lineno == len(raw_lines) and not raw.endswith("\n"):
            # Torn tail: a concurrent writer has not committed this
            # record yet (even if the fragment happens to parse, its
            # trailing fields could still be mid-write). Skip it.
            break
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ObservabilityError(
                f"{resolved}:{lineno}: bad journal line: {exc}"
            ) from exc
        if not isinstance(record, dict) or "event" not in record:
            raise ObservabilityError(
                f"{resolved}:{lineno}: journal record lacks an 'event'"
            )
        events.append(record)
    return events


def _merge_sort_key(position: int, record: Dict[str, Any]):
    # Order by work-item index when present so the merged journal reads
    # in submission order whatever the worker interleaving was; events
    # of one item keep their within-file order (the per-file position
    # tie-break — each item runs entirely inside one worker).
    item = record.get("item")
    return (0 if isinstance(item, int) else 1, item or 0, position)


def merge_worker_journals(
    trace_dir: Union[str, Path],
    into: Optional[JournalWriter] = None,
    remove_partials: bool = True,
) -> List[Dict[str, Any]]:
    """Merge per-worker partial journals, submission-ordered.

    Reads every ``worker-*.jsonl`` under ``trace_dir``, sorts the events
    by work-item index (stable within an item), appends them to ``into``
    (when given), deletes the partials, and returns the merged events.
    Called by the coordinator after each batch — also on the error path,
    so a failed sweep still journals the runs that completed.
    """
    root = Path(trace_dir)
    collected: List[tuple] = []
    partials = sorted(root.glob(WORKER_GLOB))
    for partial in partials:
        for position, record in enumerate(read_journal(partial)):
            collected.append((_merge_sort_key(position, record), record))
    collected.sort(key=lambda pair: pair[0])
    merged = [record for _key, record in collected]
    if into is not None:
        for record in merged:
            into.write_record(record)
    if remove_partials:
        for partial in partials:
            partial.unlink()
    return merged
