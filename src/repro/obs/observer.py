"""The observer protocol: how the harness reports what it is doing.

:class:`Observer` is the no-op base — and the *default*. Every hook is
an empty method, spans are one shared do-nothing context manager, and
the hot paths gate on :attr:`Observer.enabled` before computing any
event field, so an untraced run pays essentially nothing
(``benchmarks/test_obs_overhead.py`` holds the overhead under 2 %).

:class:`JournalObserver` writes events to one JSONL file — the form a
process-pool worker uses, appending to its own ``worker-<pid>.jsonl``.
:class:`TracingObserver` is the coordinator: main journal, a
:class:`~repro.obs.metrics.MetricsRegistry` fed from the event stream,
worker-journal merging, and ``metrics.prom``/``metrics.json`` exports
on close.

Observers are observational only: they receive copies of names and
numbers, never objects the simulation reads back. The import direction
is enforced by the ``obs-no-feedback`` simlint rule.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.journal import (
    JOURNAL_FILENAME,
    JournalWriter,
    merge_worker_journals,
    perf_clock,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    PROFILE_FILENAME,
    ProfileCollector,
    ProfileWriter,
    canonicalize_profile,
    merge_worker_profiles,
    profile_record,
)
from repro.obs.telemetry import (
    DEFAULT_TELEMETRY_INTERVAL_S,
    TELEMETRY_FILENAME,
    TelemetryWriter,
    canonicalize_telemetry,
    merge_worker_telemetry,
)
from repro.sim.probe import NULL_PROBE_SINK, ProbeSink, TimeSeriesProbeSink
from repro.sim.profile import NULL_PROFILER, HotPathProfiler

#: filenames of the metric exports a TracingObserver writes on close
METRICS_PROM_FILENAME = "metrics.prom"
METRICS_JSON_FILENAME = "metrics.json"


class Span:
    """A no-op profiling span; also the base for real ones.

    ``wall_s`` stays 0.0 for the no-op, so callers can gate follow-up
    work (like events/sec gauges) on ``span.wall_s > 0``.
    """

    __slots__ = ()

    wall_s: float = 0.0

    def add(self, **fields: Any) -> None:
        """Attach fields to the span's exit event (no-op here)."""

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


#: one shared instance — entering a null span allocates nothing
_NULL_SPAN = Span()


class Observer:
    """No-op observer: the zero-overhead default for every pipeline hook.

    Layers call ``observer.emit(...)``/``observer.span(...)`` without
    null checks; code that would *compute* event fields first checks
    :attr:`enabled` so disabled tracing skips the work entirely.
    """

    #: hot paths skip field computation when this is False
    enabled: bool = False

    #: where worker processes should write partial journals (None =
    #: tracing off or not directory-backed)
    trace_dir: Optional[Path] = None

    #: whether this observer collects hot-path profiles; the executor
    #: reads it to tell pool workers to profile their runs too
    profile_enabled: bool = False

    def emit(self, event: str, **fields: Any) -> None:
        """Record one journal event."""

    def span(self, phase: str, **fields: Any) -> Span:
        """A context manager timing one phase (testbed build, sim loop...)."""
        return _NULL_SPAN

    def set_gauge(self, name: str, value: float, labels: Optional[Mapping[str, str]] = None) -> None:
        """Set a gauge metric (e.g. sim events/second)."""

    def inc(self, name: str, amount: float = 1.0, labels: Optional[Mapping[str, str]] = None) -> None:
        """Increment a counter metric."""

    def probe_sink(self, scenario: str, seed: int) -> ProbeSink:
        """A telemetry sink for one run (the shared no-op by default).

        The harness installs the returned sink as ``sim.probe_sink``
        before a run and hands it back via :meth:`record_telemetry`
        after — so only telemetry-enabled observers pay for series
        collection.
        """
        return NULL_PROBE_SINK

    def record_telemetry(
        self, sink: ProbeSink, scenario: str, seed: int
    ) -> None:
        """Persist a completed run's probe-sink series (no-op here)."""

    def profiler(self, scenario: str, seed: int) -> HotPathProfiler:
        """A hot-path profiler for one run (the shared no-op by default).

        The harness installs the returned profiler as ``sim.profiler``
        before a run and hands it back via :meth:`record_profile`
        after — the exact ``probe_sink`` contract: write-only, and only
        profile-enabled observers pay for collection.
        """
        return NULL_PROFILER

    def record_profile(
        self, profiler: HotPathProfiler, scenario: str, seed: int
    ) -> None:
        """Persist a completed run's profile aggregates (no-op here)."""

    def collect_workers(self) -> None:
        """Merge per-worker partial journals (coordinator only)."""

    def close(self) -> None:
        """Flush and release any underlying files/exports."""

    def __enter__(self) -> "Observer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: the shared no-op observer used whenever tracing is off
NULL_OBSERVER = Observer()


class _TimedSpan(Span):
    """A real span: measures wall time, reports back to its observer."""

    __slots__ = ("observer", "phase", "fields", "wall_s", "_t0")

    def __init__(self, observer: "JournalObserver", phase: str, fields: Dict[str, Any]):
        self.observer = observer
        self.phase = phase
        self.fields = fields
        self.wall_s = 0.0
        self._t0 = 0.0

    def add(self, **fields: Any) -> None:
        self.fields.update(fields)

    def __enter__(self) -> "_TimedSpan":
        self._t0 = perf_clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.wall_s = perf_clock() - self._t0
        self.observer._span_done(self.phase, self.wall_s, self.fields)


class JournalObserver(Observer):
    """Journal-backed observer: every event becomes one JSONL line.

    Workers use this directly (journal only); the coordinator's
    :class:`TracingObserver` subclass adds metrics and exports.
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, Path],
        worker: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        telemetry_path: Optional[Union[str, Path]] = None,
        telemetry_interval_s: Optional[float] = DEFAULT_TELEMETRY_INTERVAL_S,
        profile_path: Optional[Union[str, Path]] = None,
    ):
        self.journal = JournalWriter(path, worker=worker)
        self.registry = registry
        self.telemetry_interval_s = telemetry_interval_s
        self.telemetry: Optional[TelemetryWriter] = (
            TelemetryWriter(telemetry_path) if telemetry_path is not None else None
        )
        self.profile: Optional[ProfileWriter] = (
            ProfileWriter(profile_path) if profile_path is not None else None
        )
        self.profile_enabled = profile_path is not None

    def emit(self, event: str, **fields: Any) -> None:
        self.journal.write(event, **fields)
        if self.registry is not None:
            self._count(event, fields)

    def span(self, phase: str, **fields: Any) -> Span:
        return _TimedSpan(self, phase, dict(fields))

    def _span_done(self, phase: str, wall_s: float, fields: Dict[str, Any]) -> None:
        self.emit("span", phase=phase, wall_s=wall_s, **fields)
        if self.registry is not None:
            self.registry.histogram(
                "span_wall_seconds",
                labels={"phase": phase},
                help="wall time per pipeline phase",
            ).observe(wall_s)

    def set_gauge(self, name: str, value: float, labels: Optional[Mapping[str, str]] = None) -> None:
        if self.registry is not None:
            self.registry.gauge(name, labels=labels).set(value)

    def inc(self, name: str, amount: float = 1.0, labels: Optional[Mapping[str, str]] = None) -> None:
        if self.registry is not None:
            self.registry.counter(name, labels=labels).inc(amount)

    # -- metrics derived from the event stream ------------------------

    _EVENT_COUNTERS = {
        "run_finished": "runs_total",
        "cache_hit": "cache_hits_total",
        "cache_miss": "cache_misses_total",
        "worker_error": "worker_errors_total",
    }

    def _count(self, event: str, fields: Mapping[str, Any]) -> None:
        assert self.registry is not None
        self.registry.counter(
            "journal_events_total",
            labels={"event": event},
            help="journal events by type",
        ).inc()
        direct = self._EVENT_COUNTERS.get(event)
        if direct is not None:
            self.registry.counter(direct).inc()
        if event == "span" and "wall_s" in fields:
            self.registry.histogram(
                "span_wall_seconds",
                labels={"phase": str(fields.get("phase", ""))},
                help="wall time per pipeline phase",
            )

    # -- telemetry -----------------------------------------------------

    def probe_sink(self, scenario: str, seed: int) -> ProbeSink:
        """A fresh collecting sink per run when telemetry is on."""
        if self.telemetry is None:
            return NULL_PROBE_SINK
        return TimeSeriesProbeSink(min_interval_s=self.telemetry_interval_s)

    def record_telemetry(
        self, sink: ProbeSink, scenario: str, seed: int
    ) -> None:
        if self.telemetry is None or not isinstance(sink, TimeSeriesProbeSink):
            return
        self.telemetry.write_sink(sink, scenario=scenario, seed=seed)

    # -- profiling -----------------------------------------------------

    def profiler(self, scenario: str, seed: int) -> HotPathProfiler:
        """A fresh collector per run when profiling is on."""
        if self.profile is None:
            return NULL_PROFILER
        return ProfileCollector()

    def record_profile(
        self, profiler: HotPathProfiler, scenario: str, seed: int
    ) -> None:
        if self.profile is None or not isinstance(profiler, ProfileCollector):
            return
        self.profile.write_record(
            profile_record(profiler, scenario=scenario, seed=seed)
        )

    def record(self, events: Iterable[Mapping[str, Any]]) -> None:
        """Fold already-written events (e.g. merged worker partials)
        into the metrics, without re-journaling them."""
        if self.registry is None:
            return
        for record in events:
            event = str(record.get("event", ""))
            self._count(event, record)
            if event == "span" and "wall_s" in record:
                self.registry.histogram(
                    "span_wall_seconds",
                    labels={"phase": str(record.get("phase", ""))},
                ).observe(float(record["wall_s"]))

    def close(self) -> None:
        if self.telemetry is not None:
            self.telemetry.close()
        if self.profile is not None:
            self.profile.close()
        self.journal.close()


class TracingObserver(JournalObserver):
    """The coordinator observer backing ``--trace DIR``.

    Owns a trace directory holding the merged ``journal.jsonl``; worker
    processes write ``worker-<pid>.jsonl`` partials next to it (they
    derive the path from :attr:`trace_dir`), and
    :meth:`collect_workers` folds those into the main journal and the
    metrics. :meth:`close` exports ``metrics.prom`` and
    ``metrics.json``.
    """

    def __init__(self, trace_dir: Union[str, Path], profile: bool = False):
        root = Path(trace_dir)
        root.mkdir(parents=True, exist_ok=True)
        super().__init__(
            root / JOURNAL_FILENAME,
            registry=MetricsRegistry(),
            telemetry_path=root / TELEMETRY_FILENAME,
            profile_path=(root / PROFILE_FILENAME) if profile else None,
        )
        self.trace_dir = root

    def collect_workers(self) -> None:
        merged = merge_worker_journals(self.trace_dir, into=self.journal)
        self.record(merged)
        assert self.telemetry is not None
        merge_worker_telemetry(self.trace_dir, into=self.telemetry)
        if self.profile is not None:
            merge_worker_profiles(self.trace_dir, into=self.profile)

    def write_metrics(self) -> None:
        """Export the registry as Prometheus text + JSON into the dir."""
        assert self.registry is not None and self.trace_dir is not None
        prom = self.trace_dir / METRICS_PROM_FILENAME
        prom.write_text(self.registry.render_prometheus(), encoding="utf-8")
        as_json = self.trace_dir / METRICS_JSON_FILENAME
        as_json.write_text(
            json.dumps(self.registry.to_dict(), indent=2, sort_keys=True),
            encoding="utf-8",
        )

    def close(self) -> None:
        self.write_metrics()
        super().close()
        # Canonical record order makes the closed files independent of
        # jobs= and of run-completion order: serial and pooled traces
        # of the same sweep are byte-identical (profile wall times are
        # the one machine-dependent exception, and say so).
        canonicalize_telemetry(self.trace_dir)
        canonicalize_profile(self.trace_dir)


def resolve_observer(
    observer: Union[None, str, Path, Observer],
) -> Observer:
    """Coerce an observer argument to an :class:`Observer`.

    ``None`` means tracing off (the shared no-op); a string or path is
    a trace directory and builds a :class:`TracingObserver`; an
    observer instance passes through.
    """
    if observer is None:
        return NULL_OBSERVER
    if isinstance(observer, Observer):
        return observer
    if isinstance(observer, (str, Path)):
        return TracingObserver(observer)
    raise ObservabilityError(
        f"observer must be None, a trace directory, or an Observer, "
        f"got {type(observer).__name__}"
    )
