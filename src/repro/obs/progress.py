"""Incremental sweep progress built from a streaming journal.

:class:`ProgressTracker` folds journal events — arriving one at a time
from a live tail or all at once from a finished file — into a
:class:`SweepProgress` snapshot: how many items are done (split into
fresh runs, cache hits, and failures), per-scenario counts, wall-time
percentiles of the runs seen so far, the simulator's aggregate
events/sec, and an EWMA-smoothed ETA.

The tracker is a pure consumer: it never writes to the trace directory
and never feeds anything back into the run (the ``obs-no-feedback``
rule). It reads only the journal's diagnostic wall-clock fields
(``t_wall``, ``wall_s``), which are explicitly outside the determinism
contract — progress display is exactly what those fields exist for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry
from repro.units import to_msec

#: smoothing factor for the inter-completion EWMA; ~ the last dozen
#: completions dominate, so the ETA adapts when a sweep's scenario mix
#: shifts from cheap to expensive cells
EWMA_ALPHA = 0.15

#: events that consume one work item when they land
_TERMINAL_EVENTS = ("run_finished", "cache_hit", "worker_error")


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return ordered[rank]


@dataclass
class ScenarioProgress:
    """Per-scenario completion counts within one sweep."""

    name: str
    started: int = 0
    finished: int = 0
    cache_hits: int = 0
    errors: int = 0

    @property
    def done(self) -> int:
        return self.finished + self.cache_hits + self.errors


@dataclass
class PhaseProgress:
    """Aggregate span timing for one pipeline phase (sim_loop, ...)."""

    phase: str
    count: int = 0
    total_wall_s: float = 0.0


@dataclass
class SweepProgress:
    """A point-in-time view of a (possibly still running) sweep."""

    #: expected batch size; 0 until a batch/sweep header has been seen
    items_total: int = 0
    grid_points: int = 0
    repetitions: int = 0
    runs_started: int = 0
    runs_finished: int = 0
    cache_hits: int = 0
    errors: int = 0
    batches_started: int = 0
    batches_finished: int = 0
    batches_aborted: int = 0
    sweeps_started: int = 0
    sweeps_finished: int = 0
    sweeps_aborted: int = 0
    abort_reason: Optional[str] = None
    #: wall seconds between the first and last event seen so far
    elapsed_s: float = 0.0
    #: run wall-time percentiles over the fresh runs seen so far
    wall_p50_s: float = 0.0
    wall_p90_s: float = 0.0
    wall_max_s: float = 0.0
    #: simulator throughput: virtual events over sim-loop wall time
    events_executed: int = 0
    events_per_s: float = 0.0
    #: EWMA of inter-completion wall intervals, and the ETA it implies
    ewma_interval_s: float = 0.0
    eta_s: Optional[float] = None
    scenarios: Dict[str, ScenarioProgress] = field(default_factory=dict)
    phases: Dict[str, PhaseProgress] = field(default_factory=dict)

    @property
    def items_done(self) -> int:
        """Items that reached a terminal state (run, hit, or error)."""
        return self.runs_finished + self.cache_hits + self.errors

    @property
    def in_flight(self) -> int:
        return max(0, self.runs_started - self.runs_finished - self.errors)

    @property
    def fraction_done(self) -> float:
        if self.items_total <= 0:
            return 0.0
        return min(1.0, self.items_done / self.items_total)

    @property
    def aborted(self) -> bool:
        return self.batches_aborted > 0 or self.sweeps_aborted > 0

    @property
    def complete(self) -> bool:
        """Every started batch reached its terminal event (or aborted)."""
        if self.batches_started == 0:
            return False
        return (
            self.batches_finished + self.batches_aborted
            >= self.batches_started
        )


class ProgressTracker:
    """Fold journal events into an evolving :class:`SweepProgress`.

    Feed it events with :meth:`observe` / :meth:`observe_all` (in
    journal order; the live tailer guarantees submission order for the
    coordinator file and near-arrival order for worker partials) and
    take :meth:`snapshot` whenever a fresh view is needed. Events that
    were already merged into the coordinator journal must not be fed
    again — dedup is the tailer's job (:mod:`repro.obs.live`).
    """

    def __init__(self, ewma_alpha: float = EWMA_ALPHA):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self._alpha = ewma_alpha
        self._progress = SweepProgress()
        self._wall_samples: List[float] = []
        self._loop_wall_s = 0.0
        self._first_t: Optional[float] = None
        self._last_t: Optional[float] = None
        self._last_done_t: Optional[float] = None
        self._ewma: Optional[float] = None

    def _scenario(self, record: Mapping[str, Any]) -> ScenarioProgress:
        name = str(record.get("scenario", "?"))
        progress = self._progress.scenarios.get(name)
        if progress is None:
            progress = ScenarioProgress(name=name)
            self._progress.scenarios[name] = progress
        return progress

    def _mark_time(self, record: Mapping[str, Any]) -> Optional[float]:
        t_wall = record.get("t_wall")
        if not isinstance(t_wall, (int, float)):
            return None
        if self._first_t is None:
            self._first_t = float(t_wall)
        self._last_t = max(self._last_t or float(t_wall), float(t_wall))
        return float(t_wall)

    def _mark_done(self, t_wall: Optional[float]) -> None:
        if t_wall is None:
            return
        if self._last_done_t is not None:
            interval = max(0.0, t_wall - self._last_done_t)
            if self._ewma is None:
                self._ewma = interval
            else:
                self._ewma += self._alpha * (interval - self._ewma)
        self._last_done_t = t_wall

    def observe(self, record: Mapping[str, Any]) -> None:
        """Fold one journal event into the progress model."""
        p = self._progress
        event = str(record.get("event", ""))
        t_wall = self._mark_time(record)
        if event == "sweep_started":
            p.sweeps_started += 1
            p.grid_points += int(record.get("grid_points", 0) or 0)
            p.repetitions = int(record.get("repetitions", 0) or 0)
            if p.batches_started == 0:
                p.items_total += int(record.get("items", 0) or 0)
        elif event == "sweep_finished":
            p.sweeps_finished += 1
        elif event == "sweep_aborted":
            p.sweeps_aborted += 1
            p.abort_reason = str(record.get("reason", "")) or p.abort_reason
        elif event == "batch_started":
            # Batch headers are authoritative for the item total: a
            # sweep header may precede them, and figure pipelines can
            # run several batches without any sweep event at all.
            if p.batches_started == 0 and p.sweeps_started > 0:
                p.items_total = 0
            p.batches_started += 1
            p.items_total += int(record.get("items", 0) or 0)
        elif event == "batch_finished":
            p.batches_finished += 1
        elif event == "batch_aborted":
            p.batches_aborted += 1
            p.abort_reason = str(record.get("reason", "")) or p.abort_reason
        elif event == "run_started":
            p.runs_started += 1
            self._scenario(record).started += 1
        elif event == "run_finished":
            p.runs_finished += 1
            self._scenario(record).finished += 1
            wall_s = record.get("wall_s")
            if isinstance(wall_s, (int, float)):
                self._wall_samples.append(float(wall_s))
            self._mark_done(t_wall)
        elif event == "cache_hit":
            p.cache_hits += 1
            self._scenario(record).cache_hits += 1
            self._mark_done(t_wall)
        elif event == "worker_error":
            p.errors += 1
            self._scenario(record).errors += 1
            self._mark_done(t_wall)
        elif event == "span":
            phase = str(record.get("phase", "?"))
            stats = p.phases.get(phase)
            if stats is None:
                stats = PhaseProgress(phase=phase)
                p.phases[phase] = stats
            stats.count += 1
            wall_s = record.get("wall_s")
            if isinstance(wall_s, (int, float)):
                stats.total_wall_s += float(wall_s)
            if phase == "sim_loop":
                executed = record.get("events_executed")
                if isinstance(executed, (int, float)):
                    p.events_executed += int(executed)
                if isinstance(wall_s, (int, float)):
                    self._loop_wall_s += float(wall_s)

    def observe_all(self, records: Iterable[Mapping[str, Any]]) -> None:
        for record in records:
            self.observe(record)

    def snapshot(self) -> SweepProgress:
        """The current progress view (derived fields refreshed)."""
        p = self._progress
        if self._first_t is not None and self._last_t is not None:
            p.elapsed_s = max(0.0, self._last_t - self._first_t)
        p.wall_p50_s = _percentile(self._wall_samples, 0.50)
        p.wall_p90_s = _percentile(self._wall_samples, 0.90)
        p.wall_max_s = max(self._wall_samples) if self._wall_samples else 0.0
        p.events_per_s = (
            p.events_executed / self._loop_wall_s
            if self._loop_wall_s > 0
            else 0.0
        )
        p.ewma_interval_s = self._ewma or 0.0
        remaining = max(0, p.items_total - p.items_done)
        if p.complete or (p.items_total > 0 and remaining == 0):
            p.eta_s = 0.0
        elif self._ewma is not None and p.items_total > 0:
            p.eta_s = remaining * self._ewma
        else:
            p.eta_s = None
        return p


def progress_to_dict(progress: SweepProgress) -> Dict[str, Any]:
    """A JSON-ready view of a snapshot (``obs watch --json``)."""
    return {
        "version": 1,
        "items_total": progress.items_total,
        "items_done": progress.items_done,
        "fraction_done": round(progress.fraction_done, 4),
        "grid_points": progress.grid_points,
        "repetitions": progress.repetitions,
        "runs_started": progress.runs_started,
        "runs_finished": progress.runs_finished,
        "cache_hits": progress.cache_hits,
        "errors": progress.errors,
        "in_flight": progress.in_flight,
        "batches_started": progress.batches_started,
        "batches_finished": progress.batches_finished,
        "batches_aborted": progress.batches_aborted,
        "sweeps_started": progress.sweeps_started,
        "sweeps_finished": progress.sweeps_finished,
        "sweeps_aborted": progress.sweeps_aborted,
        "complete": progress.complete,
        "aborted": progress.aborted,
        "abort_reason": progress.abort_reason,
        "elapsed_s": round(progress.elapsed_s, 3),
        "eta_s": (
            None if progress.eta_s is None else round(progress.eta_s, 3)
        ),
        "ewma_interval_s": round(progress.ewma_interval_s, 6),
        "wall_p50_s": round(progress.wall_p50_s, 6),
        "wall_p90_s": round(progress.wall_p90_s, 6),
        "wall_max_s": round(progress.wall_max_s, 6),
        "events_executed": progress.events_executed,
        "events_per_s": round(progress.events_per_s, 1),
        "scenarios": {
            name: {
                "started": s.started,
                "finished": s.finished,
                "cache_hits": s.cache_hits,
                "errors": s.errors,
            }
            for name, s in sorted(progress.scenarios.items())
        },
        "phases": {
            phase: {
                "count": stats.count,
                "total_wall_s": round(stats.total_wall_s, 6),
            }
            for phase, stats in sorted(progress.phases.items())
        },
    }


def progress_to_registry(progress: SweepProgress) -> MetricsRegistry:
    """Render a snapshot as Prometheus gauges (the ``/metrics`` view)."""
    registry = MetricsRegistry()

    def gauge(name: str, value: float, help: str) -> None:
        registry.gauge(name, help=help).set(value)

    gauge(
        "sweep_items_total", float(progress.items_total),
        "work items expected in the watched sweep",
    )
    gauge(
        "sweep_items_done", float(progress.items_done),
        "work items in a terminal state (run, cache hit, or error)",
    )
    gauge(
        "sweep_runs_finished", float(progress.runs_finished),
        "fresh simulations finished",
    )
    gauge(
        "sweep_cache_hits", float(progress.cache_hits),
        "items served from the result cache",
    )
    gauge(
        "sweep_errors", float(progress.errors),
        "items that failed with a worker error",
    )
    gauge(
        "sweep_in_flight", float(progress.in_flight),
        "runs started but not yet finished",
    )
    gauge(
        "sweep_fraction_done", progress.fraction_done,
        "items_done / items_total",
    )
    gauge(
        "sweep_complete", 1.0 if progress.complete else 0.0,
        "1 once every started batch finished or aborted",
    )
    gauge(
        "sweep_aborted", 1.0 if progress.aborted else 0.0,
        "1 if the sweep was cancelled mid-run",
    )
    gauge(
        "sweep_eta_seconds",
        progress.eta_s if progress.eta_s is not None else -1.0,
        "EWMA-based seconds to completion (-1 = unknown)",
    )
    gauge(
        "sweep_elapsed_seconds", progress.elapsed_s,
        "wall seconds between the first and last journal event seen",
    )
    gauge(
        "sweep_run_wall_p50_seconds", progress.wall_p50_s,
        "median wall seconds per fresh run so far",
    )
    gauge(
        "sweep_run_wall_p90_seconds", progress.wall_p90_s,
        "p90 wall seconds per fresh run so far",
    )
    gauge(
        "sim_events_per_second_aggregate", progress.events_per_s,
        "virtual events over sim-loop wall time, all runs so far",
    )
    return registry


def _format_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "eta ?"
    if eta_s >= 60:
        return f"eta {int(eta_s // 60)}m{int(eta_s % 60):02d}s"
    return f"eta {eta_s:.1f}s"


def format_progress(progress: SweepProgress, bar_width: int = 30) -> str:
    """A compact multi-line text view (the ``obs watch`` screen)."""
    p = progress
    filled = int(round(p.fraction_done * bar_width))
    bar = "#" * filled + "-" * (bar_width - filled)
    if p.aborted:
        state = f"ABORTED ({p.abort_reason or 'no reason recorded'})"
    elif p.complete:
        state = "complete"
    elif p.batches_started == 0:
        state = "waiting for batch_started"
    else:
        state = "running"
    lines = [
        f"[{bar}] {p.items_done}/{p.items_total or '?'} items "
        f"({100 * p.fraction_done:5.1f}%)  {state}",
        f"  runs {p.runs_finished}  cache hits {p.cache_hits}  "
        f"errors {p.errors}  in flight {p.in_flight}  "
        f"{_format_eta(p.eta_s)}  elapsed {p.elapsed_s:.1f}s",
        f"  run wall p50 {to_msec(p.wall_p50_s):.1f}ms  "
        f"p90 {to_msec(p.wall_p90_s):.1f}ms  "
        f"max {to_msec(p.wall_max_s):.1f}ms  "
        f"sim {p.events_per_s:,.0f} ev/s",
    ]
    busiest = sorted(
        progress.scenarios.values(),
        key=lambda s: (-s.done, s.name),
    )[:8]
    for s in busiest:
        lines.append(
            f"    {s.name:<32} runs {s.finished:>4}  "
            f"hits {s.cache_hits:>4}  errors {s.errors:>2}"
        )
    if len(progress.scenarios) > len(busiest):
        lines.append(
            f"    ... and {len(progress.scenarios) - len(busiest)} more "
            f"scenarios"
        )
    return "\n".join(lines)
