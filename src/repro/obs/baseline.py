"""Cross-run baselines: snapshot a sweep's outcomes, diff against later runs.

A *baseline* is a small committed JSON document capturing the scalar
outcomes of a traced sweep — per-scenario mean energy, simulated time,
retransmission and drop counts, plus the derived fairness/energy
savings the paper headlines. ``greenenvy obs snapshot`` produces one
from a trace directory's journal; ``greenenvy obs diff`` compares a
later trace against it with per-metric relative tolerances and exits
non-zero on drift, which is what lets CI gate on "the reproduction
still reproduces".

Every value in a snapshot is a pure function of (scenario, seed) — the
journal's deterministic fields only. Wall-clock percentiles are kept
too (they answer "did the sweep get slower"), but under a separate
``info`` section that diffing never gates on: wall time is a property
of the machine, not of the science.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis.tables import format_table
from repro.errors import ObservabilityError
from repro.obs.report import percentile

#: snapshot document schema version
BASELINE_VERSION = 1

#: per-metric relative tolerances, keyed by the metric's leaf name (the
#: part after the last "/"). Energies and times are floats that may
#: drift across Python/libm builds; event counts are integers with no
#: legitimate drift at all.
DEFAULT_METRIC_REL_TOL: Dict[str, float] = {
    "energy_j": 1e-4,
    "sim_time_s": 1e-4,
    "savings_vs_fair_percent": 1e-3,
    "retransmissions": 0.0,
    "bottleneck_drops": 0.0,
    "runs": 0.0,
}

#: fallback for metric names not in the table
FALLBACK_REL_TOL = 1e-4

#: scenario-name suffix marking the fair-CCA arm savings are computed
#: against (fig1 names its arms ``fig1-fair`` / ``fig1-<plan>``)
FAIR_SUFFIX = "-fair"


def snapshot_from_journal(
    events: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Build a baseline snapshot from a journal's event stream.

    Gated metrics (all deterministic): per-scenario means of energy,
    simulated time, retransmissions and bottleneck drops over the
    scenario's finished runs, a total run count, and — when a sibling
    scenario named ``<prefix>-fair`` exists — the energy savings
    percentage relative to it (the paper's headline number).
    """
    finished = [e for e in events if e.get("event") == "run_finished"]
    if not finished:
        raise ObservabilityError(
            "journal has no run_finished events to snapshot"
        )
    by_scenario: Dict[str, List[Mapping[str, Any]]] = {}
    for record in finished:
        by_scenario.setdefault(str(record.get("scenario", "?")), []).append(
            record
        )

    def _mean(records: List[Mapping[str, Any]], pick) -> float:
        return sum(pick(r) for r in records) / len(records)

    metrics: Dict[str, float] = {"total/runs": float(len(finished))}
    info: Dict[str, float] = {}
    energies: Dict[str, float] = {}
    for scenario in sorted(by_scenario):
        records = by_scenario[scenario]
        energy = _mean(records, lambda r: float(r.get("energy_j", 0.0)))
        energies[scenario] = energy
        metrics[f"{scenario}/energy_j"] = energy
        metrics[f"{scenario}/sim_time_s"] = _mean(
            records, lambda r: float(r.get("sim_time_s", 0.0))
        )
        metrics[f"{scenario}/retransmissions"] = _mean(
            records,
            lambda r: float(dict(r.get("counters") or {}).get("retransmissions", 0.0)),
        )
        metrics[f"{scenario}/bottleneck_drops"] = _mean(
            records,
            lambda r: float(dict(r.get("counters") or {}).get("bottleneck_drops", 0.0)),
        )
        # Measurement-kind-specific scalars (e.g. a fabric run's
        # host/switch energy split and FCT percentiles) gate too: every
        # extras value is deterministic by the RunMeasurement contract.
        extras_keys = sorted(
            {key for r in records for key in dict(r.get("extras") or {})}
        )
        for key in extras_keys:
            metrics[f"{scenario}/{key}"] = _mean(
                records,
                lambda r, k=key: float(dict(r.get("extras") or {}).get(k, 0.0)),
            )
        walls = [float(r.get("wall_s", 0.0)) for r in records]
        info[f"{scenario}/p50_wall_s"] = percentile(walls, 50.0)
        info[f"{scenario}/p90_wall_s"] = percentile(walls, 90.0)

    # The paper's headline: energy savings of each arm versus the fair
    # arm of the same experiment (matched by name prefix).
    for scenario, energy in energies.items():
        if scenario.endswith(FAIR_SUFFIX):
            continue
        prefix = scenario.split("-", 1)[0]
        fair = energies.get(prefix + FAIR_SUFFIX)
        if fair is None or fair <= 0:
            continue
        metrics[f"{scenario}/savings_vs_fair_percent"] = (
            100.0 * (fair - energy) / fair
        )

    return {"version": BASELINE_VERSION, "metrics": metrics, "info": info}


def save_baseline(
    snapshot: Mapping[str, Any], path: Union[str, Path]
) -> None:
    """Write a snapshot as stable, committed-friendly JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a snapshot document, validating its shape."""
    target = Path(path)
    if not target.exists():
        raise ObservabilityError(f"no baseline at {target}")
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ObservabilityError(f"{target}: bad baseline JSON: {exc}") from exc
    if not isinstance(document, dict) or "metrics" not in document:
        raise ObservabilityError(f"{target}: baseline lacks a 'metrics' map")
    return document


@dataclass
class DriftRow:
    """One metric's comparison between a baseline and a current run."""

    key: str
    baseline: Optional[float]
    current: Optional[float]
    rel_delta: float
    tolerance: float
    status: str  # ok | regressed | missing | new

    @property
    def gating(self) -> bool:
        """Whether this row should fail a CI gate."""
        return self.status in ("regressed", "missing")


def _tolerance_for(key: str, tolerances: Mapping[str, float]) -> float:
    leaf = key.rsplit("/", 1)[-1]
    return tolerances.get(leaf, FALLBACK_REL_TOL)


def _relative_delta(base: float, current: float) -> float:
    if base == current:
        return 0.0
    eps = 1e-9
    return abs(current - base) / max(abs(base), eps)


def compare(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    tolerances: Optional[Mapping[str, float]] = None,
) -> List[DriftRow]:
    """Diff two snapshots' gated metrics into per-metric drift rows.

    A baseline metric absent from the current run is a regression
    (``missing``) — a disappeared scenario must be an explicit baseline
    update, never a silent pass. A current metric absent from the
    baseline is informational (``new``).
    """
    tols = dict(DEFAULT_METRIC_REL_TOL)
    if tolerances:
        tols.update(tolerances)
    base_metrics = dict(baseline.get("metrics") or {})
    cur_metrics = dict(current.get("metrics") or {})
    rows: List[DriftRow] = []
    for key in sorted(set(base_metrics) | set(cur_metrics)):
        tolerance = _tolerance_for(key, tols)
        if key not in cur_metrics:
            rows.append(
                DriftRow(
                    key=key,
                    baseline=float(base_metrics[key]),
                    current=None,
                    rel_delta=float("inf"),
                    tolerance=tolerance,
                    status="missing",
                )
            )
            continue
        if key not in base_metrics:
            rows.append(
                DriftRow(
                    key=key,
                    baseline=None,
                    current=float(cur_metrics[key]),
                    rel_delta=float("inf"),
                    tolerance=tolerance,
                    status="new",
                )
            )
            continue
        base = float(base_metrics[key])
        cur = float(cur_metrics[key])
        rel = _relative_delta(base, cur)
        rows.append(
            DriftRow(
                key=key,
                baseline=base,
                current=cur,
                rel_delta=rel,
                tolerance=tolerance,
                status="ok" if rel <= tolerance else "regressed",
            )
        )
    return rows


def has_regression(rows: Sequence[DriftRow]) -> bool:
    """Whether any row fails the gate (regressed or missing)."""
    return any(row.gating for row in rows)


def format_drift_table(rows: Sequence[DriftRow]) -> str:
    """Human-readable drift report (the ``obs diff`` output)."""
    if not rows:
        return "no metrics to compare"

    def _cell(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:.6g}"

    body = format_table(
        ["metric", "baseline", "current", "rel delta", "tol", "status"],
        [
            (
                row.key,
                _cell(row.baseline),
                _cell(row.current),
                "inf" if row.rel_delta == float("inf") else f"{row.rel_delta:.3g}",
                f"{row.tolerance:.3g}",
                row.status.upper() if row.gating else row.status,
            )
            for row in rows
        ],
    )
    gating = [row for row in rows if row.gating]
    verdict = (
        f"DRIFT: {len(gating)} metric(s) beyond tolerance"
        if gating
        else f"ok: {len(rows)} metric(s) within tolerance"
    )
    return body + "\n\n" + verdict
