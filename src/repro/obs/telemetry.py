"""Telemetry persistence: probe-sink series as JSONL in a trace dir.

The sim-side half of the telemetry channel is
:mod:`repro.sim.probe` — a neutral sink protocol components emit into.
This module is the obs-side half: it serializes a
:class:`~repro.sim.probe.TimeSeriesProbeSink`'s collected streams into
``telemetry.jsonl`` next to the run journal, one JSON object per
(scenario, seed, channel, entity) series::

    {"scenario": "fig1-fair", "seed": 0, "channel": "cwnd_bytes",
     "entity": "flow-1", "times": [...], "values": [...]}

Process-pool safety mirrors the journal: workers append to their own
``telemetry-worker-<wid>.jsonl`` partial (the name deliberately does
*not* match the journal's ``worker-*.jsonl`` glob) and the coordinator
merges partials into the main file after each batch, sorted by
(scenario, seed, channel, entity) so the merged file is independent of
worker interleaving.

Everything here is stamped with virtual time only — records carry no
wall clock and no process identity, so telemetry files are directly
diffable across runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

from repro.errors import ObservabilityError
from repro.sim.probe import TimeSeriesProbeSink
from repro.sim.trace import TimeSeries
from repro.units import msec

#: filename of the merged telemetry file inside a trace dir
TELEMETRY_FILENAME = "telemetry.jsonl"

#: glob pattern of per-worker telemetry partials awaiting merge
TELEMETRY_WORKER_GLOB = "telemetry-worker-*.jsonl"

#: default downsampling interval for traced runs: 1 ms of virtual time
#: per stream keeps per-ACK channels (microsecond spacing at 10 Gb/s)
#: from dominating the trace while preserving figure-grade resolution
DEFAULT_TELEMETRY_INTERVAL_S = msec(1.0)

#: fields every telemetry record must carry
_REQUIRED_FIELDS = ("scenario", "seed", "channel", "entity", "times", "values")


def telemetry_records(
    sink: TimeSeriesProbeSink, scenario: str, seed: int
) -> List[Dict[str, Any]]:
    """Serialize a probe sink's streams to record dicts, key-ordered."""
    records: List[Dict[str, Any]] = []
    for (channel, entity), series in sink.items():
        records.append(
            {
                "scenario": scenario,
                "seed": seed,
                "channel": channel,
                "entity": entity,
                "times": list(series.times),
                "values": list(series.values),
            }
        )
    return records


class TelemetryWriter:
    """Append-only JSONL writer for telemetry records, flushed eagerly."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: Optional[IO[str]] = self.path.open("a", encoding="utf-8")
        self.records_written = 0

    def write_record(self, record: Dict[str, Any]) -> None:
        """Append one series record."""
        if self._file is None:
            raise ObservabilityError(f"telemetry file {self.path} is closed")
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        self.records_written += 1

    def write_sink(
        self, sink: TimeSeriesProbeSink, scenario: str, seed: int
    ) -> int:
        """Append every stream of ``sink``; returns records written."""
        records = telemetry_records(sink, scenario, seed)
        for record in records:
            self.write_record(record)
        return len(records)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def telemetry_path(target: Union[str, Path]) -> Path:
    """Resolve a telemetry argument: a ``.jsonl`` file or a trace dir."""
    path = Path(target)
    if path.is_dir():
        return path / TELEMETRY_FILENAME
    return path


def read_telemetry(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a telemetry JSONL file (or trace directory) into records."""
    resolved = telemetry_path(path)
    if not resolved.exists():
        raise ObservabilityError(f"no telemetry at {resolved}")
    records: List[Dict[str, Any]] = []
    with resolved.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ObservabilityError(
                    f"{resolved}:{lineno}: bad telemetry line: {exc}"
                ) from exc
            if not isinstance(record, dict) or not all(
                field in record for field in _REQUIRED_FIELDS
            ):
                raise ObservabilityError(
                    f"{resolved}:{lineno}: telemetry record lacks one of "
                    f"{', '.join(_REQUIRED_FIELDS)}"
                )
            records.append(record)
    return records


def series_from_record(record: Dict[str, Any]) -> TimeSeries:
    """Rebuild a :class:`TimeSeries` from one telemetry record."""
    return TimeSeries(
        name=f"{record['entity']}:{record['channel']}",
        times=[float(t) for t in record["times"]],
        values=[float(v) for v in record["values"]],
    )


def _merge_sort_key(record: Dict[str, Any]):
    return (
        str(record.get("scenario", "")),
        record.get("seed", 0),
        str(record.get("channel", "")),
        str(record.get("entity", "")),
    )


def canonicalize_telemetry(path: Union[str, Path]) -> int:
    """Rewrite a telemetry file in (scenario, seed, channel, entity) order.

    Serial runs append records in run-completion order while pooled
    runs append merge-sorted batches; sorting the closed file makes the
    two byte-identical, so traces diff cleanly whatever ``jobs=`` was.
    Returns the number of records; a missing file is a no-op (zero).
    """
    resolved = telemetry_path(path)
    if not resolved.exists():
        return 0
    records = sorted(read_telemetry(resolved), key=_merge_sort_key)
    resolved.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
        encoding="utf-8",
    )
    return len(records)


def merge_worker_telemetry(
    trace_dir: Union[str, Path],
    into: Optional[TelemetryWriter] = None,
    remove_partials: bool = True,
) -> List[Dict[str, Any]]:
    """Merge per-worker telemetry partials into deterministic order.

    Reads every ``telemetry-worker-*.jsonl`` under ``trace_dir``, sorts
    records by (scenario, seed, channel, entity), appends them to
    ``into`` (when given), deletes the partials, and returns the merged
    records. Mirrors :func:`repro.obs.journal.merge_worker_journals`.
    """
    root = Path(trace_dir)
    merged: List[Dict[str, Any]] = []
    partials = sorted(root.glob(TELEMETRY_WORKER_GLOB))
    for partial in partials:
        merged.extend(read_telemetry(partial))
    merged.sort(key=_merge_sort_key)
    if into is not None:
        for record in merged:
            into.write_record(record)
    if remove_partials:
        for partial in partials:
            partial.unlink()
    return merged
