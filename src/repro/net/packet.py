"""Packet model.

One :class:`Packet` models one on-the-wire frame: a TCP data segment or a
(pure) ACK. Sizes include protocol headers so link serialization time and
queue occupancy are computed on wire bytes, the quantity that matters for
the bottleneck.

ECN is modelled as the standard two-bit dance collapsed to booleans:
``ecn_capable`` (ECT) set by the sender, ``ecn_marked`` (CE) set by a
marking queue, and ``ecn_echo`` (ECE) reflected on the ACK — all that
DCTCP needs.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

#: Bytes of IP + TCP header on every segment (no options modelled beyond
#: a fixed allowance for timestamps/SACK, as in common MSS arithmetic).
TCP_IP_HEADER_BYTES = 40

#: Ethernet framing overhead (header + FCS + preamble + IPG) charged on
#: the wire. Kept separate from the IP packet size because MTU bounds the
#: IP packet, not the frame.
ETHERNET_OVERHEAD_BYTES = 38

_packet_ids = itertools.count()


class Packet:
    """A single simulated frame.

    One instance is allocated per simulated segment and per ACK, so the
    class defines ``__slots__`` instead of paying for a ``__dict__``.

    Attributes
    ----------
    flow_id:
        Identifies the TCP connection this packet belongs to; used for
        demux at the receiving host and per-flow accounting.
    src, dst:
        Host names, used by the switch's forwarding table.
    seq:
        For data segments, the byte offset of the first payload byte.
    payload_bytes:
        TCP payload length (0 for a pure ACK).
    is_ack / ack_seq:
        ACK flag and cumulative acknowledgement (next expected byte).
    sacks:
        Selectively-acknowledged byte ranges carried on an ACK, as
        ``(start, end)`` half-open intervals.
    sent_time:
        Virtual time the segment was handed to the NIC; echoed on the ACK
        (``echo_time``) so the sender can take RTT samples even for
        retransmitted data (Karn's algorithm is still honoured by the
        ``retransmitted`` flag).
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "seq",
        "payload_bytes",
        "is_ack",
        "ack_seq",
        "sacks",
        "ecn_capable",
        "ecn_marked",
        "ecn_echo",
        "ecn_marked_bytes",
        "retransmitted",
        "rwnd_bytes",
        "int_qlen_bytes",
        "int_tx_bytes",
        "int_timestamp",
        "int_link_rate_bps",
        "priority",
        "sent_time",
        "echo_time",
        "packet_id",
    )

    def __init__(
        self,
        flow_id: int,
        src: str,
        dst: str,
        seq: int = 0,
        payload_bytes: int = 0,
        is_ack: bool = False,
        ack_seq: int = 0,
        sacks: Tuple[Tuple[int, int], ...] = (),
        ecn_capable: bool = False,
        ecn_marked: bool = False,
        ecn_echo: bool = False,
        # on ACKs: how many of the newly acknowledged bytes were CE-marked
        # (DCTCP's fraction-of-marked-bytes feedback, collapsed to one field)
        ecn_marked_bytes: int = 0,
        retransmitted: bool = False,
        # receive window advertised on ACKs (None = field not carried)
        rwnd_bytes: Optional[int] = None,
        # in-band network telemetry (INT), stamped by the bottleneck egress
        # when enabled and echoed on ACKs — what HPCC consumes. One record
        # suffices on a single-bottleneck path.
        int_qlen_bytes: Optional[int] = None,
        int_tx_bytes: Optional[float] = None,
        int_timestamp: Optional[float] = None,
        int_link_rate_bps: Optional[float] = None,
        # scheduling priority for pFabric-style switches (lower = sooner);
        # senders set it to the flow's remaining bytes to approximate SRPT
        priority: Optional[int] = None,
        sent_time: float = 0.0,
        echo_time: Optional[float] = None,
        packet_id: Optional[int] = None,
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.sacks = sacks
        self.ecn_capable = ecn_capable
        self.ecn_marked = ecn_marked
        self.ecn_echo = ecn_echo
        self.ecn_marked_bytes = ecn_marked_bytes
        self.retransmitted = retransmitted
        self.rwnd_bytes = rwnd_bytes
        self.int_qlen_bytes = int_qlen_bytes
        self.int_tx_bytes = int_tx_bytes
        self.int_timestamp = int_timestamp
        self.int_link_rate_bps = int_link_rate_bps
        self.priority = priority
        self.sent_time = sent_time
        self.echo_time = echo_time
        self.packet_id = (
            next(_packet_ids) if packet_id is None else packet_id
        )

    @property
    def size_bytes(self) -> int:
        """IP packet size: payload plus TCP/IP headers."""
        return self.payload_bytes + TCP_IP_HEADER_BYTES

    @property
    def wire_bytes(self) -> int:
        """Bytes occupied on the wire including Ethernet framing."""
        return self.size_bytes + ETHERNET_OVERHEAD_BYTES

    @property
    def end_seq(self) -> int:
        """One past the last payload byte (== seq for pure ACKs)."""
        return self.seq + self.payload_bytes

    def describe(self) -> str:
        """Short human-readable form for traces and test failures."""
        if self.is_ack:
            kind = f"ACK {self.ack_seq}"
            if self.ecn_echo:
                kind += " ECE"
            if self.sacks:
                kind += f" SACK{list(self.sacks)}"
        else:
            kind = f"DATA [{self.seq},{self.end_seq})"
            if self.retransmitted:
                kind += " RETX"
            if self.ecn_marked:
                kind += " CE"
        return f"<{self.src}->{self.dst} flow={self.flow_id} {kind}>"


def mss_for_mtu(mtu_bytes: int) -> int:
    """Maximum segment size for a given MTU (MTU minus TCP/IP headers)."""
    if mtu_bytes <= TCP_IP_HEADER_BYTES:
        raise ValueError(
            f"MTU {mtu_bytes} too small for {TCP_IP_HEADER_BYTES}B of headers"
        )
    return mtu_bytes - TCP_IP_HEADER_BYTES
