"""Links and egress interfaces.

A :class:`Link` is a unidirectional pipe with a fixed bit rate and
propagation delay. An :class:`Interface` couples a queue to a link and
implements the store-and-forward loop: if the link is idle a packet
starts serializing immediately, otherwise it waits in the queue; when a
serialization finishes, delivery is scheduled one propagation delay later
and the next packet (if any) starts.

This is the classic ns-2 ``Queue + DelayLink`` decomposition and is the
only place in the library where virtual time is consumed by data motion.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.errors import NetworkConfigError
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.trace import CounterSet
from repro.units import BITS_PER_BYTE


class PacketSink(Protocol):
    """Anything that can receive packets from a link."""

    def receive(self, packet: Packet) -> None:
        """Handle an arriving packet."""
        ...  # pragma: no cover - protocol definition


class Link:
    """Unidirectional link: serialization at ``rate_bps`` + fixed delay.

    ``loss_rate`` models random corruption (bit errors, flaky optics):
    each packet is independently dropped with that probability after
    serialization. Deterministic given ``loss_rng``; used by robustness
    tests and failure-injection experiments.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay_s: float,
        name: str = "link",
        loss_rate: float = 0.0,
        loss_rng=None,
    ):
        if rate_bps <= 0:
            raise NetworkConfigError(f"link rate must be > 0, got {rate_bps}")
        if delay_s < 0:
            raise NetworkConfigError(f"link delay must be >= 0, got {delay_s}")
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkConfigError(
                f"loss rate must be in [0, 1), got {loss_rate}"
            )
        if loss_rate > 0 and loss_rng is None:
            raise NetworkConfigError("a lossy link needs an RNG stream")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.name = name
        self.loss_rate = loss_rate
        self.loss_rng = loss_rng
        self.sink: Optional[PacketSink] = None
        self.counters = CounterSet()

    def connect(self, sink: PacketSink) -> None:
        """Attach the receiving end."""
        self.sink = sink

    def serialization_time(self, packet: Packet) -> float:
        """Seconds to clock ``packet`` onto the wire."""
        return packet.wire_bytes * BITS_PER_BYTE / self.rate_bps

    def deliver_after_serialization(self, packet: Packet) -> None:
        """Schedule delivery at now + propagation delay.

        Called by the interface when serialization completes; split out so
        the interface owns the link-busy bookkeeping.
        """
        if self.sink is None:
            raise NetworkConfigError(f"{self.name}: no sink connected")
        self.counters.add("tx_packets")
        self.counters.add("tx_bytes", packet.wire_bytes)
        if self.loss_rate > 0 and self.loss_rng.random() < self.loss_rate:
            self.counters.add("corrupted")
            return  # bit error: the frame dies on the wire
        self.sim.schedule(self.delay_s, self.sink.receive, packet)


class Interface:
    """An egress interface: queue + link + transmit loop.

    ``on_dequeue`` (optional) fires when a packet leaves the queue and
    starts serializing — the hook the energy model uses to charge per-
    packet transmit CPU work at the moment the host actually does it.
    """

    def __init__(
        self,
        sim: Simulator,
        queue: DropTailQueue,
        link: Link,
        name: str = "interface",
        on_drop: Optional[Callable[[Packet], None]] = None,
        on_dequeue: Optional[Callable[[Packet], None]] = None,
        min_packet_gap_s: float = 0.0,
        int_telemetry: bool = False,
    ):
        if min_packet_gap_s < 0:
            raise NetworkConfigError(
                f"min packet gap must be >= 0, got {min_packet_gap_s}"
            )
        self.sim = sim
        self.queue = queue
        self.link = link
        self.name = name
        self.on_drop = on_drop
        self.on_dequeue = on_dequeue
        #: per-packet processing floor: the host CPU/DMA path cannot emit
        #: packets faster than one per this many seconds, which is what
        #: keeps small-MTU configurations below line rate (paper §4.4)
        self.min_packet_gap_s = min_packet_gap_s
        #: stamp INT metadata (queue length, cumulative tx bytes, link
        #: rate, timestamp) on departing packets — HPCC's switch support
        self.int_telemetry = int_telemetry
        self._tx_bytes_total = 0.0
        self._busy = False
        self.counters = CounterSet()

    @property
    def busy(self) -> bool:
        """Whether a packet is currently being serialized."""
        return self._busy

    @property
    def backlog_bytes(self) -> int:
        """Bytes waiting in the queue (not counting the in-flight packet)."""
        return self.queue.occupancy_bytes

    def enqueue(self, packet: Packet) -> bool:
        """Submit a packet for transmission. Returns False if dropped."""
        if not self._busy and self.queue.empty:
            self._start_transmission(packet)
            return True
        accepted = self.queue.enqueue(packet)
        if not accepted:
            self.counters.add("drops")
            if self.on_drop is not None:
                self.on_drop(packet)
        return accepted

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        if self.on_dequeue is not None:
            self.on_dequeue(packet)
        self._tx_bytes_total += packet.wire_bytes
        if self.int_telemetry and not packet.is_ack:
            packet.int_qlen_bytes = self.queue.occupancy_bytes
            packet.int_tx_bytes = self._tx_bytes_total
            packet.int_timestamp = self.sim.now
            packet.int_link_rate_bps = self.link.rate_bps
        hold = max(self.link.serialization_time(packet), self.min_packet_gap_s)
        self.sim.schedule(hold, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.link.deliver_after_serialization(packet)
        self.counters.add("tx_packets")
        nxt = self.queue.dequeue()
        if nxt is not None:
            self._start_transmission(nxt)
        else:
            self._busy = False
