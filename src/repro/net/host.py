"""End hosts.

A :class:`Host` owns a NIC, demultiplexes arriving packets to registered
flow endpoints (TCP connections and receivers), and publishes stack
events — packet sent/received, retransmission, congestion-control
computation — to listeners. The energy layer subscribes to those events
to account CPU work; keeping the host ignorant of energy keeps the
network substrate independently testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.errors import NetworkConfigError
from repro.net.nic import Nic
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import CounterSet


class FlowEndpoint(Protocol):
    """Anything that terminates a flow on a host (sender or receiver side)."""

    def handle_packet(self, packet: Packet) -> None:
        """Process a packet addressed to this endpoint."""
        ...  # pragma: no cover - protocol definition


class HostListener:
    """Subscriber to host stack events. Subclass and override what you need.

    Every hook receives the host so a single listener can serve several
    hosts (the energy meter attaches one CPU model per host but shares
    analysis listeners).
    """

    def on_packet_sent(self, host: "Host", packet: Packet) -> None:
        """A packet was handed to the NIC."""

    def on_packet_received(self, host: "Host", packet: Packet) -> None:
        """A packet arrived and was demultiplexed."""

    def on_retransmit(self, host: "Host", packet: Packet) -> None:
        """A data segment was retransmitted (fast retransmit or RTO)."""

    def on_cc_op(
        self, host: "Host", algorithm: str, cost_units: float, flow_id: int
    ) -> None:
        """The congestion controller ran ``cost_units`` of computation."""


class Host:
    """A server end-host: NIC + flow demux + event publication."""

    def __init__(self, sim: Simulator, name: str, nic: Optional[Nic] = None):
        self.sim = sim
        self.name = name
        self.nic = nic
        self._endpoints: Dict[int, FlowEndpoint] = {}
        self._listeners: List[HostListener] = []
        self.counters = CounterSet()

    # -- wiring ---------------------------------------------------------

    def attach_nic(self, nic: Nic) -> None:
        """Install the host's NIC (must happen before sending)."""
        self.nic = nic

    def register_flow(self, flow_id: int, endpoint: FlowEndpoint) -> None:
        """Bind ``flow_id`` to an endpoint for packet demux."""
        if flow_id in self._endpoints:
            raise NetworkConfigError(
                f"{self.name}: flow {flow_id} already registered"
            )
        self._endpoints[flow_id] = endpoint

    def unregister_flow(self, flow_id: int) -> None:
        """Remove a flow binding (idempotent)."""
        self._endpoints.pop(flow_id, None)

    def add_listener(self, listener: HostListener) -> None:
        """Subscribe to this host's stack events."""
        self._listeners.append(listener)

    # -- data path --------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Transmit a packet via the NIC, publishing the send event."""
        if self.nic is None:
            raise NetworkConfigError(f"{self.name}: no NIC attached")
        packet.sent_time = self.sim.now
        self.counters.add("tx_packets")
        self.counters.add("tx_bytes", packet.size_bytes)
        if packet.retransmitted:
            self.counters.add("retransmissions")
            for listener in self._listeners:
                listener.on_retransmit(self, packet)
        for listener in self._listeners:
            listener.on_packet_sent(self, packet)
        return self.nic.send(packet)

    def receive(self, packet: Packet) -> None:
        """Demultiplex an arriving packet to its flow endpoint."""
        self.counters.add("rx_packets")
        self.counters.add("rx_bytes", packet.size_bytes)
        for listener in self._listeners:
            listener.on_packet_received(self, packet)
        endpoint = self._endpoints.get(packet.flow_id)
        if endpoint is None:
            self.counters.add("rx_unroutable")
            return
        endpoint.handle_packet(packet)

    def notify_cc_op(
        self, algorithm: str, cost_units: float, flow_id: int = -1
    ) -> None:
        """Publish a congestion-control computation event."""
        self.counters.add("cc_ops")
        for listener in self._listeners:
            listener.on_cc_op(self, algorithm, cost_units, flow_id)

    @property
    def mtu_bytes(self) -> int:
        """The NIC MTU (TCP uses this to size segments)."""
        if self.nic is None:
            raise NetworkConfigError(f"{self.name}: no NIC attached")
        return self.nic.mtu_bytes
