"""An output-queued switch.

Models the testbed's Tofino at the level the paper exercises it: packets
arrive, are looked up in a static forwarding table, and are queued on the
destination's output port. Each output port is an
:class:`~repro.net.link.Interface` (queue + link), so the bottleneck
behaviour — queue growth, DropTail loss, ECN marking — happens here.

Prior work cited by the paper finds switch power is essentially
load-independent, so the switch contributes a constant power draw that
our energy accounting deliberately excludes (the paper measures end-host
CPU energy only).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import NetworkConfigError
from repro.net.link import Interface
from repro.net.packet import Packet
from repro.sim.trace import CounterSet


class Switch:
    """Static-forwarding output-queued switch."""

    def __init__(self, name: str = "switch"):
        self.name = name
        self._ports: Dict[str, Interface] = {}
        self.counters = CounterSet()

    def add_port(self, dst_host: str, interface: Interface) -> None:
        """Route packets destined to ``dst_host`` out of ``interface``."""
        if dst_host in self._ports:
            raise NetworkConfigError(f"{self.name}: duplicate route for {dst_host}")
        self._ports[dst_host] = interface

    def port_for(self, dst_host: str) -> Interface:
        """The output interface serving ``dst_host``."""
        port = self._ports.get(dst_host)
        if port is None:
            raise NetworkConfigError(
                f"{self.name}: no route to {dst_host!r} "
                f"(known: {sorted(self._ports)})"
            )
        return port

    def receive(self, packet: Packet) -> None:
        """Forward an arriving packet to its output port."""
        self.counters.add("rx_packets")
        self.counters.add("rx_bytes", packet.size_bytes)
        port = self.port_for(packet.dst)
        if not port.enqueue(packet):
            self.counters.add("forward_drops")
