"""An output-queued switch with optional ECMP groups.

Models a Tofino-class device at the level the paper exercises it:
packets arrive, are looked up in a static forwarding table, and are
queued on the chosen output port. Each output port is an
:class:`~repro.net.link.Interface` (queue + link), so the bottleneck
behaviour — queue growth, DropTail loss, ECN marking — happens here.

For multi-switch fabrics a destination may be reachable over several
equal-cost ports (leaf uplinks toward the spines). :meth:`add_ecmp_group`
and :meth:`set_default_ecmp` install such groups; member selection
hashes the flow identity (src, dst, flow id) with CRC32 the way real
switches hash the 5-tuple, so a flow's path is deterministic, stable for
the flow's lifetime, and independent of Python's per-process ``hash``
randomisation. The switch name salts the hash to avoid the classic
hash-polarisation pathology where every switch on a path makes the same
choice and half the fabric's links carry no traffic.

Prior work cited by the paper finds switch power is essentially
load-independent; per-switch power accounting for fleets lives in
:mod:`repro.energy.fleet`, which reads the port counters this module
maintains rather than coupling the forwarding path to an energy model.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkConfigError
from repro.net.link import Interface
from repro.net.packet import Packet
from repro.sim.trace import CounterSet

#: a flow's switching identity: (src host, dst host, flow id)
FlowKey = Tuple[str, str, int]


class Switch:
    """Static-forwarding output-queued switch with ECMP groups."""

    def __init__(self, name: str = "switch"):
        self.name = name
        self._ports: Dict[str, Interface] = {}
        self._ecmp_groups: Dict[str, List[Interface]] = {}
        self._default_ecmp: Optional[List[Interface]] = None
        self._flow_port_cache: Dict[FlowKey, Interface] = {}
        # salt once: hashing f"{name}|..." per packet would rebuild the
        # prefix every lookup
        self._hash_salt = zlib.crc32(name.encode("utf-8"))
        self.counters = CounterSet()

    # -- forwarding table ---------------------------------------------

    def add_port(self, dst_host: str, interface: Interface) -> None:
        """Route packets destined to ``dst_host`` out of ``interface``."""
        if dst_host in self._ports or dst_host in self._ecmp_groups:
            raise NetworkConfigError(f"{self.name}: duplicate route for {dst_host}")
        self._ports[dst_host] = interface

    def add_ecmp_group(
        self, dst_host: str, interfaces: Sequence[Interface]
    ) -> None:
        """Route ``dst_host`` over several equal-cost ports (per-flow hash)."""
        if not interfaces:
            raise NetworkConfigError(f"{self.name}: empty ECMP group for {dst_host}")
        if dst_host in self._ports or dst_host in self._ecmp_groups:
            raise NetworkConfigError(f"{self.name}: duplicate route for {dst_host}")
        self._ecmp_groups[dst_host] = list(interfaces)

    def set_default_ecmp(self, interfaces: Sequence[Interface]) -> None:
        """ECMP group used for any destination with no exact route.

        Leaf switches in a leaf–spine fabric route every non-local
        destination up to the spines; a default group keeps the table
        O(local hosts) instead of O(all hosts).
        """
        if not interfaces:
            raise NetworkConfigError(f"{self.name}: empty default ECMP group")
        self._default_ecmp = list(interfaces)

    def _ecmp_member(
        self, group: List[Interface], packet: Packet
    ) -> Interface:
        """Deterministic per-flow member choice, cached for path stability."""
        key = (packet.src, packet.dst, packet.flow_id)
        port = self._flow_port_cache.get(key)
        if port is None:
            digest = zlib.crc32(
                f"{key[0]}|{key[1]}|{key[2]}".encode("utf-8"), self._hash_salt  # simlint: ignore[perf-alloc-in-hot-path] -- cache-miss branch, once per flow
            )
            port = group[digest % len(group)]
            self._flow_port_cache[key] = port
        return port

    def port_for_packet(self, packet: Packet) -> Interface:
        """The output interface this packet will be queued on."""
        port = self._ports.get(packet.dst)
        if port is not None:
            return port
        group = self._ecmp_groups.get(packet.dst, self._default_ecmp)
        if group is None:
            raise NetworkConfigError(
                f"{self.name}: no route to {packet.dst!r} "
                f"(known: {sorted(self._ports)})"
            )
        return self._ecmp_member(group, packet)

    def port_for(self, dst_host: str) -> Interface:
        """The exact-route output interface serving ``dst_host``."""
        port = self._ports.get(dst_host)
        if port is None:
            raise NetworkConfigError(
                f"{self.name}: no route to {dst_host!r} "
                f"(known: {sorted(self._ports)})"
            )
        return port

    def ports(self) -> List[Interface]:
        """Every distinct output interface, in stable insertion order."""
        seen: Dict[int, Interface] = {}
        for iface in self._ports.values():
            seen.setdefault(id(iface), iface)
        for group in self._ecmp_groups.values():
            for iface in group:
                seen.setdefault(id(iface), iface)
        if self._default_ecmp is not None:
            for iface in self._default_ecmp:
                seen.setdefault(id(iface), iface)
        return list(seen.values())

    # -- data path ----------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Forward an arriving packet to its output port."""
        self.counters.add("rx_packets")
        self.counters.add("rx_bytes", packet.size_bytes)
        port = self.port_for_packet(packet)
        if not port.enqueue(packet):
            self.counters.add("forward_drops")
