"""Network substrate: packets, queues, links, NICs, switch, hosts, topology."""

from __future__ import annotations

from repro.net.host import FlowEndpoint, Host, HostListener
from repro.net.link import Interface, Link, PacketSink
from repro.net.nic import Nic
from repro.net.packet import (
    ETHERNET_OVERHEAD_BYTES,
    TCP_IP_HEADER_BYTES,
    Packet,
    mss_for_mtu,
)
from repro.net.queue import DropTailQueue, EcnQueue, PriorityQueue
from repro.net.switch import Switch
from repro.net.topology import (
    ConservationLedger,
    Fabric,
    FabricConfig,
    IncastTestbed,
    Testbed,
    TestbedConfig,
    build_fat_tree,
    build_incast_testbed,
    build_leaf_spine,
    build_testbed,
)

__all__ = [
    "Packet",
    "mss_for_mtu",
    "TCP_IP_HEADER_BYTES",
    "ETHERNET_OVERHEAD_BYTES",
    "DropTailQueue",
    "EcnQueue",
    "PriorityQueue",
    "Link",
    "Interface",
    "PacketSink",
    "Nic",
    "Switch",
    "Host",
    "HostListener",
    "FlowEndpoint",
    "Testbed",
    "TestbedConfig",
    "build_testbed",
    "IncastTestbed",
    "build_incast_testbed",
    "Fabric",
    "FabricConfig",
    "ConservationLedger",
    "build_leaf_spine",
    "build_fat_tree",
]
