"""Network interface cards, including round-robin link bonding.

The paper's sender is attached to the switch with two bonded 10 Gb/s
links, packets sprayed round-robin, so the *switch* (not the sender NIC)
is the bottleneck. :class:`Nic` reproduces that: it owns one or more
egress :class:`~repro.net.link.Interface` objects and sprays packets
across them.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from repro.errors import NetworkConfigError
from repro.net.link import Interface
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import CounterSet


class Nic:
    """A host NIC with an MTU and one or more bonded egress interfaces.

    ``tx_packet_gap_s`` models the host's per-packet CPU/DMA cost: the
    transmit path emits at most one packet per gap, *across* all bonded
    links. This is what keeps small-MTU configurations below line rate
    (paper §4.4: 9000-byte MTU was needed "to achieve the full 10 Gb/s
    line rate").
    """

    def __init__(
        self,
        interfaces: Sequence[Interface],
        mtu_bytes: int = 1500,
        name: str = "nic",
        sim: Optional[Simulator] = None,
        tx_packet_gap_s: float = 0.0,
        tx_queue_packets: int = 1024,
    ):
        if not interfaces:
            raise NetworkConfigError("NIC needs at least one interface")
        if mtu_bytes < 576:
            raise NetworkConfigError(f"MTU {mtu_bytes} below IPv4 minimum of 576")
        if tx_packet_gap_s < 0:
            raise NetworkConfigError(
                f"tx packet gap must be >= 0, got {tx_packet_gap_s}"
            )
        if tx_packet_gap_s > 0 and sim is None:
            raise NetworkConfigError("a paced NIC needs the simulator")
        if tx_queue_packets <= 0:
            raise NetworkConfigError(
                f"tx queue must hold >= 1 packet, got {tx_queue_packets}"
            )
        self.interfaces: List[Interface] = list(interfaces)
        self.mtu_bytes = mtu_bytes
        self.name = name
        self.sim = sim
        self.tx_packet_gap_s = tx_packet_gap_s
        #: host qdisc depth (Linux txqueuelen-style, drop-tail like
        #: pfifo_fast); only enforced on the paced path
        self.tx_queue_packets = tx_queue_packets
        self._next_interface = 0
        self._txq: Deque[Packet] = deque()
        self._draining = False
        self._phantom_slots = 0
        self._flow_backlog: dict = {}
        self._drain_listeners: List[Callable[[], None]] = []
        self.counters = CounterSet()
        #: invoked for every packet handed to the NIC — energy accounting hook
        self.on_send: Optional[Callable[[Packet], None]] = None

    # -- qdisc visibility (TCP Small Queues support) ---------------------

    @property
    def tx_backlog_packets(self) -> int:
        """Packets waiting in the host qdisc."""
        return len(self._txq)

    def flow_backlog_bytes(self, flow_id: int) -> int:
        """Bytes a specific flow has sitting in the host qdisc."""
        return self._flow_backlog.get(flow_id, 0)

    def add_drain_listener(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` whenever the qdisc drains a packet — the
        wakeup TCP Small Queues uses to resume a backpressured sender."""
        self._drain_listeners.append(callback)

    @property
    def bonded(self) -> bool:
        """Whether this NIC sprays across multiple physical links."""
        return len(self.interfaces) > 1

    @property
    def aggregate_rate_bps(self) -> float:
        """Sum of member link rates."""
        return sum(iface.link.rate_bps for iface in self.interfaces)

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet`` on the next bonded interface (round-robin).

        Returns False only for an immediate (unpaced) egress-queue drop;
        with a transmit gap configured, packets queue at the host and the
        method reports acceptance.
        """
        if packet.size_bytes > self.mtu_bytes:
            raise NetworkConfigError(
                f"{self.name}: packet of {packet.size_bytes}B exceeds "
                f"MTU {self.mtu_bytes}B — segmentation is the TCP layer's job"
            )
        if self.on_send is not None:
            self.on_send(packet)
        self.counters.add("tx_packets")
        self.counters.add("tx_bytes", packet.size_bytes)
        if self.tx_packet_gap_s <= 0:
            return self._dispatch(packet)
        if len(self._txq) >= self.tx_queue_packets:
            # The CPU fully processed this packet before the qdisc
            # rejected it — that work is gone but the time was spent, so
            # the transmit path loses one slot to it (this is what makes
            # the no-backpressure baseline measurably *slower*, not just
            # chattier: §4.3's "queuing at the sender host").
            self._phantom_slots += 1
            self.counters.add("tx_drops")
            self.counters.add("qdisc_drops")
            return False
        self._txq.append(packet)
        self._flow_backlog[packet.flow_id] = (
            self._flow_backlog.get(packet.flow_id, 0) + packet.size_bytes
        )
        if not self._draining:
            self._draining = True
            self._drain()
        return True

    def _dispatch(self, packet: Packet) -> bool:
        iface = self.interfaces[self._next_interface]
        self._next_interface = (self._next_interface + 1) % len(self.interfaces)
        accepted = iface.enqueue(packet)
        if not accepted:
            self.counters.add("tx_drops")
        return accepted

    def _drain(self) -> None:
        if self._phantom_slots > 0:
            # Burn a transmit slot on work the qdisc already discarded.
            self._phantom_slots -= 1
            assert self.sim is not None
            self.sim.schedule(self.tx_packet_gap_s, self._drain)
            return
        if not self._txq:
            self._draining = False
            return
        packet = self._txq.popleft()
        backlog = self._flow_backlog.get(packet.flow_id, 0) - packet.size_bytes
        if backlog > 0:
            self._flow_backlog[packet.flow_id] = backlog
        else:
            self._flow_backlog.pop(packet.flow_id, None)
        self._dispatch(packet)
        for callback in self._drain_listeners:
            callback()
        assert self.sim is not None  # guaranteed by constructor check
        self.sim.schedule(self.tx_packet_gap_s, self._drain)
