"""Topology builders.

:func:`build_testbed` reproduces the paper's lab setup (§3): a sender and
a receiver attached to one switch, the sender with two bonded 10 Gb/s
links (round-robin spraying) so the switch's output port toward the
receiver — not the sender NIC — is the bottleneck.

All rates, delays, buffer sizes and the ECN marking threshold are
parameters so experiments can deviate (Fig. 4's load sweep, ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import NetworkConfigError
from repro.net.host import Host
from repro.net.link import Interface, Link
from repro.net.nic import Nic
from repro.net.queue import DropTailQueue, EcnQueue, PriorityQueue
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.units import gbps, usec


@dataclass
class TestbedConfig:
    """Parameters of the paper-style dumbbell testbed.

    Defaults mirror §3 of the paper: 10 Gb/s links, 9000 B MTU, the
    sender bonded over two links. Propagation delays are datacenter-scale
    so the base RTT is ~40 µs before queueing.
    """

    link_rate_bps: float = gbps(10.0)
    link_delay_s: float = usec(10.0)
    mtu_bytes: int = 9000
    sender_bonded_links: int = 2
    #: bottleneck (switch -> receiver) buffer. Tofino-class switches have
    #: tens of MB of shared buffer; 2 MB per port is a realistic dynamic
    #: threshold and deep enough that 9000-byte MTUs get >200 packets.
    buffer_bytes: int = 2 * 1024 * 1024
    #: DCTCP-style CE marking threshold at the bottleneck; None disables ECN
    ecn_threshold_bytes: Optional[int] = 100 * 1024
    #: host per-packet processing floor (pps cap); see
    #: repro.energy.calibration.HOST_MIN_PACKET_GAP_S for provenance
    host_packet_gap_s: float = usec(2.35)
    #: stamp in-band telemetry at the bottleneck (HPCC's switch support)
    int_telemetry: bool = False
    #: bottleneck scheduling: "fifo" (default) or "priority" (pFabric-
    #: style SRPT approximation, the paper's §5 direction)
    bottleneck_discipline: str = "fifo"

    def __post_init__(self) -> None:
        if self.sender_bonded_links < 1:
            raise ValueError("need at least one sender link")

    @property
    def base_rtt_s(self) -> float:
        """Propagation-only round-trip time (sender->switch->receiver->back)."""
        return 4 * self.link_delay_s


@dataclass
class Testbed:
    """A wired-up testbed ready for flows to be attached."""

    sim: Simulator
    config: TestbedConfig
    sender: Host
    receiver: Host
    switch: Switch
    bottleneck: Interface
    sender_interfaces: List[Interface] = field(default_factory=list)

    @property
    def bottleneck_rate_bps(self) -> float:
        """Rate of the contended switch->receiver link."""
        return self.bottleneck.link.rate_bps


def _make_queue(config: TestbedConfig, name: str, ecn: bool) -> DropTailQueue:
    if config.bottleneck_discipline == "priority":
        return PriorityQueue(capacity_bytes=config.buffer_bytes, name=name)
    if config.bottleneck_discipline != "fifo":
        raise ValueError(
            f"unknown bottleneck discipline {config.bottleneck_discipline!r}"
        )
    if ecn and config.ecn_threshold_bytes is not None:
        return EcnQueue(
            capacity_bytes=config.buffer_bytes,
            mark_threshold_bytes=config.ecn_threshold_bytes,
            name=name,
        )
    return DropTailQueue(capacity_bytes=config.buffer_bytes, name=name)


def build_testbed(sim: Simulator, config: Optional[TestbedConfig] = None) -> Testbed:
    """Construct the paper's two-server, one-switch testbed.

    The returned :class:`Testbed` exposes the bottleneck interface so
    experiments can inspect queue occupancy, drops and ECN marks.
    """
    config = config or TestbedConfig()
    switch = Switch(name="tofino")
    sender = Host(sim, "sender")
    receiver = Host(sim, "receiver")

    # Sender -> switch: N bonded links (packets sprayed round-robin).
    sender_ifaces = []
    for i in range(config.sender_bonded_links):
        link = Link(sim, config.link_rate_bps, config.link_delay_s, f"snd-up-{i}")
        link.connect(switch)
        queue = DropTailQueue(config.buffer_bytes, name=f"snd-q-{i}")
        sender_ifaces.append(Interface(sim, queue, link, name=f"snd-if-{i}"))
    sender.attach_nic(
        Nic(
            sender_ifaces,
            mtu_bytes=config.mtu_bytes,
            name="sender-nic",
            sim=sim,
            tx_packet_gap_s=config.host_packet_gap_s,
        )
    )

    # Switch -> receiver: the bottleneck. ECN-capable when configured.
    down_link = Link(sim, config.link_rate_bps, config.link_delay_s, "sw-down")
    down_link.connect(receiver)
    bottleneck_queue = _make_queue(config, "bottleneck", ecn=True)
    # The bottleneck queue is the contended resource every figure reads
    # about; give it the telemetry clock so depth/drop series appear in
    # traces (no-op unless a probe sink is installed).
    bottleneck_queue.attach_probe(sim)
    bottleneck = Interface(
        sim,
        bottleneck_queue,
        down_link,
        name="bottleneck",
        int_telemetry=config.int_telemetry,
    )
    switch.add_port("receiver", bottleneck)

    # Receiver -> switch (ACK path) and switch -> sender.
    ack_up_link = Link(sim, config.link_rate_bps, config.link_delay_s, "rcv-up")
    ack_up_link.connect(switch)
    ack_queue = DropTailQueue(config.buffer_bytes, name="rcv-q")
    receiver.attach_nic(
        Nic(
            [Interface(sim, ack_queue, ack_up_link, name="rcv-if")],
            mtu_bytes=config.mtu_bytes,
            name="receiver-nic",
            sim=sim,
            tx_packet_gap_s=config.host_packet_gap_s,
        )
    )
    to_sender_link = Link(sim, config.link_rate_bps, config.link_delay_s, "sw-up")
    to_sender_link.connect(sender)
    to_sender_queue = DropTailQueue(config.buffer_bytes, name="sw-snd-q")
    switch.add_port(
        "sender", Interface(sim, to_sender_queue, to_sender_link, name="sw-snd-if")
    )

    return Testbed(
        sim=sim,
        config=config,
        sender=sender,
        receiver=receiver,
        switch=switch,
        bottleneck=bottleneck,
        sender_interfaces=sender_ifaces,
    )


@dataclass
class IncastTestbed:
    """An N-senders-to-one-receiver fan-in (the incast pattern).

    §5 of the paper names incast as the workload its single-sender
    results must be validated against; this topology provides it. Every
    sender has its own host, NIC and uplink; the switch's port toward
    the receiver is the shared bottleneck.
    """

    sim: Simulator
    config: TestbedConfig
    senders: List[Host]
    receiver: Host
    switch: Switch
    bottleneck: Interface

    @property
    def fan_in(self) -> int:
        return len(self.senders)


def build_incast_testbed(
    sim: Simulator,
    n_senders: int,
    config: Optional[TestbedConfig] = None,
) -> IncastTestbed:
    """Construct an N-to-1 incast topology around one switch."""
    if n_senders < 1:
        raise ValueError(f"need >= 1 sender, got {n_senders}")
    config = config or TestbedConfig()
    switch = Switch(name="tofino")
    receiver = Host(sim, "receiver")

    # Switch -> receiver: the shared bottleneck.
    down_link = Link(sim, config.link_rate_bps, config.link_delay_s, "sw-down")
    down_link.connect(receiver)
    bottleneck_queue = _make_queue(config, "bottleneck", ecn=True)
    bottleneck_queue.attach_probe(sim)
    bottleneck = Interface(
        sim,
        bottleneck_queue,
        down_link,
        name="bottleneck",
        int_telemetry=config.int_telemetry,
    )
    switch.add_port("receiver", bottleneck)

    # Receiver -> switch (the shared ACK uplink).
    ack_link = Link(sim, config.link_rate_bps, config.link_delay_s, "rcv-up")
    ack_link.connect(switch)
    receiver.attach_nic(
        Nic(
            [Interface(sim, DropTailQueue(config.buffer_bytes, "rcv-q"), ack_link)],
            mtu_bytes=config.mtu_bytes,
            name="receiver-nic",
            sim=sim,
            tx_packet_gap_s=config.host_packet_gap_s,
        )
    )

    senders: List[Host] = []
    for i in range(n_senders):
        name = f"sender-{i}"
        host = Host(sim, name)
        up_link = Link(sim, config.link_rate_bps, config.link_delay_s, f"{name}-up")
        up_link.connect(switch)
        host.attach_nic(
            Nic(
                [
                    Interface(
                        sim,
                        DropTailQueue(config.buffer_bytes, f"{name}-q"),
                        up_link,
                    )
                ],
                mtu_bytes=config.mtu_bytes,
                name=f"{name}-nic",
                sim=sim,
                tx_packet_gap_s=config.host_packet_gap_s,
            )
        )
        down = Link(sim, config.link_rate_bps, config.link_delay_s, f"sw-{name}")
        down.connect(host)
        switch.add_port(
            name,
            Interface(
                sim, DropTailQueue(config.buffer_bytes, f"sw-{name}-q"), down
            ),
        )
        senders.append(host)

    return IncastTestbed(
        sim=sim,
        config=config,
        senders=senders,
        receiver=receiver,
        switch=switch,
        bottleneck=bottleneck,
    )


# -- multi-switch fabrics (leaf-spine, fat-tree) ----------------------


@dataclass
class FabricConfig:
    """Parameters of a multi-switch datacenter fabric.

    Defaults describe a small two-tier Clos: every leaf (ToR) switch
    serves one rack of hosts and uplinks to every spine, giving
    ``spines`` equal-cost paths between any pair of racks. Fabric links
    are faster than host links (the usual 4:1 step) so the rack uplinks,
    not the spine ports, congest first under cross-rack load.
    """

    leaves: int = 4
    spines: int = 2
    hosts_per_leaf: int = 4
    host_link_rate_bps: float = gbps(10.0)
    fabric_link_rate_bps: float = gbps(40.0)
    link_delay_s: float = usec(5.0)
    mtu_bytes: int = 9000
    buffer_bytes: int = 2 * 1024 * 1024
    #: ECN marking threshold on every switch egress port; None disables
    ecn_threshold_bytes: Optional[int] = 100 * 1024
    host_packet_gap_s: float = usec(2.35)
    #: stamp in-band telemetry on every switch egress port (HPCC's
    #: switch support; every hop updates the packet's INT record)
    int_telemetry: bool = False

    def __post_init__(self) -> None:
        if self.leaves < 1:
            raise ValueError(f"need >= 1 leaf, got {self.leaves}")
        if self.spines < 1:
            raise ValueError(f"need >= 1 spine, got {self.spines}")
        if self.hosts_per_leaf < 1:
            raise ValueError(
                f"need >= 1 host per leaf, got {self.hosts_per_leaf}"
            )

    @property
    def total_hosts(self) -> int:
        return self.leaves * self.hosts_per_leaf

    @property
    def base_rtt_s(self) -> float:
        """Propagation-only cross-rack RTT (host-leaf-spine-leaf-host, both ways)."""
        return 8 * self.link_delay_s


@dataclass
class ConservationLedger:
    """Fabric-wide packet accounting (the conservation invariant).

    ``residual`` is the number of packets neither delivered nor
    accounted to a loss mechanism — i.e. packets still in flight. After
    the event queue drains it must be exactly zero; the fleet invariant
    suite asserts that.
    """

    sent: int
    delivered: int
    queue_drops: int
    qdisc_drops: int
    corrupted: int

    @property
    def residual(self) -> int:
        return (
            self.sent
            - self.delivered
            - self.queue_drops
            - self.qdisc_drops
            - self.corrupted
        )


@dataclass
class Fabric:
    """A wired multi-switch fabric ready for flows to be attached.

    ``tiers`` maps a tier name ("leaf"/"spine", or "edge"/"agg"/"core"
    for fat-trees) to its switches in index order; ``host_rack`` maps a
    host name to the rack (leaf / edge-switch index) it lives in. The
    queue and link registries exist so invariants and fleet energy can
    enumerate every loss point and every port without re-walking the
    wiring.
    """

    sim: Simulator
    config: FabricConfig
    hosts: List[Host]
    tiers: Dict[str, List[Switch]]
    host_rack: Dict[str, int]
    queues: List[DropTailQueue] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)

    @property
    def switches(self) -> List[Switch]:
        """Every switch, tier by tier in construction order."""
        return [sw for tier in self.tiers.values() for sw in tier]

    def host(self, name: str) -> Host:
        for h in self.hosts:
            if h.name == name:
                return h
        raise NetworkConfigError(f"no host named {name!r} in fabric")

    def rack_hosts(self, rack: int) -> List[Host]:
        """Hosts homed on leaf/edge switch ``rack``."""
        return [h for h in self.hosts if self.host_rack[h.name] == rack]

    def conservation(self) -> ConservationLedger:
        """Packet conservation ledger across every host, queue and link.

        Counts host-level transmissions (data and ACKs alike) against
        deliveries plus every loss mechanism in the fabric: switch/NIC
        egress queue drops, host qdisc drops, and on-wire corruption.
        NIC ``tx_drops`` is deliberately *not* a term — each such drop
        is already counted by the queue (dispatch path) or as a
        ``qdisc_drops`` (paced path), and interface ``drops`` mirrors
        the queue's own counter.
        """
        return ConservationLedger(
            sent=sum(h.counters.get("tx_packets") for h in self.hosts),
            delivered=sum(h.counters.get("rx_packets") for h in self.hosts),
            queue_drops=sum(q.counters.get("drops") for q in self.queues),
            qdisc_drops=sum(
                h.nic.counters.get("qdisc_drops")
                for h in self.hosts
                if h.nic is not None
            ),
            corrupted=sum(
                link.counters.get("corrupted") for link in self.links
            ),
        )


def _fabric_switch_queue(config: FabricConfig, name: str) -> DropTailQueue:
    """An ECN-capable egress queue for a fabric switch port."""
    if config.ecn_threshold_bytes is not None:
        return EcnQueue(
            capacity_bytes=config.buffer_bytes,
            mark_threshold_bytes=config.ecn_threshold_bytes,
            name=name,
        )
    return DropTailQueue(capacity_bytes=config.buffer_bytes, name=name)


def _fabric_link(
    fabric: Fabric,
    rate_bps: float,
    name: str,
    sink,
) -> Link:
    link = Link(fabric.sim, rate_bps, fabric.config.link_delay_s, name)
    link.connect(sink)
    fabric.links.append(link)
    return link


def _switch_port(
    fabric: Fabric, rate_bps: float, name: str, sink
) -> Interface:
    """A switch egress port: ECN queue + link toward ``sink``."""
    link = _fabric_link(fabric, rate_bps, f"{name}-link", sink)
    queue = _fabric_switch_queue(fabric.config, f"{name}-q")
    fabric.queues.append(queue)
    return Interface(
        fabric.sim,
        queue,
        link,
        name=name,
        int_telemetry=fabric.config.int_telemetry,
    )


def _attach_fabric_host(
    fabric: Fabric, name: str, rack: int, edge_switch: Switch
) -> Host:
    """Create a host, wire its uplink to ``edge_switch`` and register it."""
    config = fabric.config
    host = Host(fabric.sim, name)
    up_link = _fabric_link(
        fabric, config.host_link_rate_bps, f"{name}-up-link", edge_switch
    )
    up_queue = DropTailQueue(config.buffer_bytes, name=f"{name}-q")
    fabric.queues.append(up_queue)
    host.attach_nic(
        Nic(
            [Interface(fabric.sim, up_queue, up_link, name=f"{name}-if")],
            mtu_bytes=config.mtu_bytes,
            name=f"{name}-nic",
            sim=fabric.sim,
            tx_packet_gap_s=config.host_packet_gap_s,
        )
    )
    down = _switch_port(
        fabric, config.host_link_rate_bps, f"{edge_switch.name}-to-{name}", host
    )
    edge_switch.add_port(name, down)
    fabric.hosts.append(host)
    fabric.host_rack[name] = rack
    return host


def build_leaf_spine(
    sim: Simulator, config: Optional[FabricConfig] = None
) -> Fabric:
    """Construct a two-tier leaf-spine (Clos) fabric.

    Hosts are named ``h{leaf}-{index}``. Each leaf has an exact route
    for its local hosts and a default ECMP group over its spine uplinks
    for everything else; each spine holds an exact per-host route to the
    owning leaf's downlink, so any cross-rack flow takes exactly one of
    ``config.spines`` equal-cost paths, chosen by flow hash at the
    source leaf.
    """
    config = config or FabricConfig()
    leaves = [Switch(name=f"leaf-{i}") for i in range(config.leaves)]
    spines = [Switch(name=f"spine-{i}") for i in range(config.spines)]
    fabric = Fabric(
        sim=sim,
        config=config,
        hosts=[],
        tiers={"leaf": leaves, "spine": spines},
        host_rack={},
    )

    for li, leaf in enumerate(leaves):
        for hi in range(config.hosts_per_leaf):
            _attach_fabric_host(fabric, f"h{li}-{hi}", li, leaf)

    for li, leaf in enumerate(leaves):
        uplinks = []
        for si, spine in enumerate(spines):
            uplinks.append(
                _switch_port(
                    fabric,
                    config.fabric_link_rate_bps,
                    f"leaf-{li}-up-{si}",
                    spine,
                )
            )
            down = _switch_port(
                fabric,
                config.fabric_link_rate_bps,
                f"spine-{si}-down-{li}",
                leaf,
            )
            for host in fabric.rack_hosts(li):
                spine.add_port(host.name, down)
        leaf.set_default_ecmp(uplinks)

    return fabric


def build_fat_tree(
    sim: Simulator, k: int = 4, config: Optional[FabricConfig] = None
) -> Fabric:
    """Construct a k-ary fat-tree (Al-Fares et al.) fabric.

    ``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation switches;
    ``(k/2)^2`` core switches; ``k/2`` hosts per edge switch. Hosts are
    named ``h{pod}-{edge}-{index}`` and ``host_rack`` maps to a global
    edge-switch index. Edge switches default-ECMP to their pod's
    aggregation tier; aggregation switches route pod-local racks exactly
    and default-ECMP to their core group; cores hold exact per-host
    routes. ``config.leaves``/``hosts_per_leaf``/``spines`` are ignored
    — the shape is fully determined by ``k``.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    config = config or FabricConfig()
    half = k // 2
    edges = [
        Switch(name=f"edge-{p}-{e}") for p in range(k) for e in range(half)
    ]
    aggs = [
        Switch(name=f"agg-{p}-{a}") for p in range(k) for a in range(half)
    ]
    cores = [Switch(name=f"core-{c}") for c in range(half * half)]
    fabric = Fabric(
        sim=sim,
        config=config,
        hosts=[],
        tiers={"edge": edges, "agg": aggs, "core": cores},
        host_rack={},
    )

    for p in range(k):
        for e in range(half):
            edge = edges[p * half + e]
            for hi in range(half):
                _attach_fabric_host(
                    fabric, f"h{p}-{e}-{hi}", p * half + e, edge
                )

    for p in range(k):
        pod_aggs = aggs[p * half: (p + 1) * half]
        # edge <-> agg, full bipartite inside the pod
        for e in range(half):
            edge = edges[p * half + e]
            rack = p * half + e
            uplinks = []
            for a, agg in enumerate(pod_aggs):
                uplinks.append(
                    _switch_port(
                        fabric,
                        config.fabric_link_rate_bps,
                        f"{edge.name}-up-{a}",
                        agg,
                    )
                )
                down = _switch_port(
                    fabric,
                    config.fabric_link_rate_bps,
                    f"{agg.name}-down-{e}",
                    edge,
                )
                for host in fabric.rack_hosts(rack):
                    agg.add_port(host.name, down)
            edge.set_default_ecmp(uplinks)
        # agg -> core: agg at position a uplinks to its core group
        for a, agg in enumerate(pod_aggs):
            agg.set_default_ecmp(
                [
                    _switch_port(
                        fabric,
                        config.fabric_link_rate_bps,
                        f"{agg.name}-up-{ci}",
                        cores[ci],
                    )
                    for ci in range(a * half, (a + 1) * half)
                ]
            )

    # core -> agg: core c reaches pod p through the pod's agg at
    # position c // half, and routes every host in that pod exactly.
    for c, core in enumerate(cores):
        for p in range(k):
            agg = aggs[p * half + c // half]
            down = _switch_port(
                fabric,
                config.fabric_link_rate_bps,
                f"{core.name}-down-{p}",
                agg,
            )
            for rack in range(p * half, (p + 1) * half):
                for host in fabric.rack_hosts(rack):
                    core.add_port(host.name, down)

    return fabric
