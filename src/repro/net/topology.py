"""Topology builders.

:func:`build_testbed` reproduces the paper's lab setup (§3): a sender and
a receiver attached to one switch, the sender with two bonded 10 Gb/s
links (round-robin spraying) so the switch's output port toward the
receiver — not the sender NIC — is the bottleneck.

All rates, delays, buffer sizes and the ECN marking threshold are
parameters so experiments can deviate (Fig. 4's load sweep, ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.host import Host
from repro.net.link import Interface, Link
from repro.net.nic import Nic
from repro.net.queue import DropTailQueue, EcnQueue, PriorityQueue
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.units import gbps, usec


@dataclass
class TestbedConfig:
    """Parameters of the paper-style dumbbell testbed.

    Defaults mirror §3 of the paper: 10 Gb/s links, 9000 B MTU, the
    sender bonded over two links. Propagation delays are datacenter-scale
    so the base RTT is ~40 µs before queueing.
    """

    link_rate_bps: float = gbps(10.0)
    link_delay_s: float = usec(10.0)
    mtu_bytes: int = 9000
    sender_bonded_links: int = 2
    #: bottleneck (switch -> receiver) buffer. Tofino-class switches have
    #: tens of MB of shared buffer; 2 MB per port is a realistic dynamic
    #: threshold and deep enough that 9000-byte MTUs get >200 packets.
    buffer_bytes: int = 2 * 1024 * 1024
    #: DCTCP-style CE marking threshold at the bottleneck; None disables ECN
    ecn_threshold_bytes: Optional[int] = 100 * 1024
    #: host per-packet processing floor (pps cap); see
    #: repro.energy.calibration.HOST_MIN_PACKET_GAP_S for provenance
    host_packet_gap_s: float = usec(2.35)
    #: stamp in-band telemetry at the bottleneck (HPCC's switch support)
    int_telemetry: bool = False
    #: bottleneck scheduling: "fifo" (default) or "priority" (pFabric-
    #: style SRPT approximation, the paper's §5 direction)
    bottleneck_discipline: str = "fifo"

    def __post_init__(self) -> None:
        if self.sender_bonded_links < 1:
            raise ValueError("need at least one sender link")

    @property
    def base_rtt_s(self) -> float:
        """Propagation-only round-trip time (sender->switch->receiver->back)."""
        return 4 * self.link_delay_s


@dataclass
class Testbed:
    """A wired-up testbed ready for flows to be attached."""

    sim: Simulator
    config: TestbedConfig
    sender: Host
    receiver: Host
    switch: Switch
    bottleneck: Interface
    sender_interfaces: List[Interface] = field(default_factory=list)

    @property
    def bottleneck_rate_bps(self) -> float:
        """Rate of the contended switch->receiver link."""
        return self.bottleneck.link.rate_bps


def _make_queue(config: TestbedConfig, name: str, ecn: bool) -> DropTailQueue:
    if config.bottleneck_discipline == "priority":
        return PriorityQueue(capacity_bytes=config.buffer_bytes, name=name)
    if config.bottleneck_discipline != "fifo":
        raise ValueError(
            f"unknown bottleneck discipline {config.bottleneck_discipline!r}"
        )
    if ecn and config.ecn_threshold_bytes is not None:
        return EcnQueue(
            capacity_bytes=config.buffer_bytes,
            mark_threshold_bytes=config.ecn_threshold_bytes,
            name=name,
        )
    return DropTailQueue(capacity_bytes=config.buffer_bytes, name=name)


def build_testbed(sim: Simulator, config: Optional[TestbedConfig] = None) -> Testbed:
    """Construct the paper's two-server, one-switch testbed.

    The returned :class:`Testbed` exposes the bottleneck interface so
    experiments can inspect queue occupancy, drops and ECN marks.
    """
    config = config or TestbedConfig()
    switch = Switch(name="tofino")
    sender = Host(sim, "sender")
    receiver = Host(sim, "receiver")

    # Sender -> switch: N bonded links (packets sprayed round-robin).
    sender_ifaces = []
    for i in range(config.sender_bonded_links):
        link = Link(sim, config.link_rate_bps, config.link_delay_s, f"snd-up-{i}")
        link.connect(switch)
        queue = DropTailQueue(config.buffer_bytes, name=f"snd-q-{i}")
        sender_ifaces.append(Interface(sim, queue, link, name=f"snd-if-{i}"))
    sender.attach_nic(
        Nic(
            sender_ifaces,
            mtu_bytes=config.mtu_bytes,
            name="sender-nic",
            sim=sim,
            tx_packet_gap_s=config.host_packet_gap_s,
        )
    )

    # Switch -> receiver: the bottleneck. ECN-capable when configured.
    down_link = Link(sim, config.link_rate_bps, config.link_delay_s, "sw-down")
    down_link.connect(receiver)
    bottleneck_queue = _make_queue(config, "bottleneck", ecn=True)
    # The bottleneck queue is the contended resource every figure reads
    # about; give it the telemetry clock so depth/drop series appear in
    # traces (no-op unless a probe sink is installed).
    bottleneck_queue.attach_probe(sim)
    bottleneck = Interface(
        sim,
        bottleneck_queue,
        down_link,
        name="bottleneck",
        int_telemetry=config.int_telemetry,
    )
    switch.add_port("receiver", bottleneck)

    # Receiver -> switch (ACK path) and switch -> sender.
    ack_up_link = Link(sim, config.link_rate_bps, config.link_delay_s, "rcv-up")
    ack_up_link.connect(switch)
    ack_queue = DropTailQueue(config.buffer_bytes, name="rcv-q")
    receiver.attach_nic(
        Nic(
            [Interface(sim, ack_queue, ack_up_link, name="rcv-if")],
            mtu_bytes=config.mtu_bytes,
            name="receiver-nic",
            sim=sim,
            tx_packet_gap_s=config.host_packet_gap_s,
        )
    )
    to_sender_link = Link(sim, config.link_rate_bps, config.link_delay_s, "sw-up")
    to_sender_link.connect(sender)
    to_sender_queue = DropTailQueue(config.buffer_bytes, name="sw-snd-q")
    switch.add_port(
        "sender", Interface(sim, to_sender_queue, to_sender_link, name="sw-snd-if")
    )

    return Testbed(
        sim=sim,
        config=config,
        sender=sender,
        receiver=receiver,
        switch=switch,
        bottleneck=bottleneck,
        sender_interfaces=sender_ifaces,
    )


@dataclass
class IncastTestbed:
    """An N-senders-to-one-receiver fan-in (the incast pattern).

    §5 of the paper names incast as the workload its single-sender
    results must be validated against; this topology provides it. Every
    sender has its own host, NIC and uplink; the switch's port toward
    the receiver is the shared bottleneck.
    """

    sim: Simulator
    config: TestbedConfig
    senders: List[Host]
    receiver: Host
    switch: Switch
    bottleneck: Interface

    @property
    def fan_in(self) -> int:
        return len(self.senders)


def build_incast_testbed(
    sim: Simulator,
    n_senders: int,
    config: Optional[TestbedConfig] = None,
) -> IncastTestbed:
    """Construct an N-to-1 incast topology around one switch."""
    if n_senders < 1:
        raise ValueError(f"need >= 1 sender, got {n_senders}")
    config = config or TestbedConfig()
    switch = Switch(name="tofino")
    receiver = Host(sim, "receiver")

    # Switch -> receiver: the shared bottleneck.
    down_link = Link(sim, config.link_rate_bps, config.link_delay_s, "sw-down")
    down_link.connect(receiver)
    bottleneck_queue = _make_queue(config, "bottleneck", ecn=True)
    bottleneck_queue.attach_probe(sim)
    bottleneck = Interface(
        sim,
        bottleneck_queue,
        down_link,
        name="bottleneck",
        int_telemetry=config.int_telemetry,
    )
    switch.add_port("receiver", bottleneck)

    # Receiver -> switch (the shared ACK uplink).
    ack_link = Link(sim, config.link_rate_bps, config.link_delay_s, "rcv-up")
    ack_link.connect(switch)
    receiver.attach_nic(
        Nic(
            [Interface(sim, DropTailQueue(config.buffer_bytes, "rcv-q"), ack_link)],
            mtu_bytes=config.mtu_bytes,
            name="receiver-nic",
            sim=sim,
            tx_packet_gap_s=config.host_packet_gap_s,
        )
    )

    senders: List[Host] = []
    for i in range(n_senders):
        name = f"sender-{i}"
        host = Host(sim, name)
        up_link = Link(sim, config.link_rate_bps, config.link_delay_s, f"{name}-up")
        up_link.connect(switch)
        host.attach_nic(
            Nic(
                [
                    Interface(
                        sim,
                        DropTailQueue(config.buffer_bytes, f"{name}-q"),
                        up_link,
                    )
                ],
                mtu_bytes=config.mtu_bytes,
                name=f"{name}-nic",
                sim=sim,
                tx_packet_gap_s=config.host_packet_gap_s,
            )
        )
        down = Link(sim, config.link_rate_bps, config.link_delay_s, f"sw-{name}")
        down.connect(host)
        switch.add_port(
            name,
            Interface(
                sim, DropTailQueue(config.buffer_bytes, f"sw-{name}-q"), down
            ),
        )
        senders.append(host)

    return IncastTestbed(
        sim=sim,
        config=config,
        senders=senders,
        receiver=receiver,
        switch=switch,
        bottleneck=bottleneck,
    )
