"""Egress queues: DropTail and ECN-marking (DCTCP-style) variants.

A queue sits in front of every link (host NIC egress and switch output
port alike). Queue occupancy is accounted in bytes, the unit real switch
buffers are sized in, so MTU changes shift how many *packets* fit without
changing capacity.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.errors import NetworkConfigError
from repro.net.packet import Packet
from repro.sim.probe import QUEUE_DEPTH_CHANNEL, QUEUE_DROPS_CHANNEL
from repro.sim.profile import QUEUE_DEQUEUE, QUEUE_ENQUEUE
from repro.sim.trace import CounterSet

if TYPE_CHECKING:
    from repro.sim.engine import Simulator


class DropTailQueue:
    """A FIFO byte-limited queue that drops arrivals when full."""

    def __init__(self, capacity_bytes: int, name: str = "queue"):
        if capacity_bytes <= 0:
            raise NetworkConfigError(f"queue capacity must be > 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._items: Deque[Packet] = deque()
        self._occupancy = 0
        self.counters = CounterSet()
        #: telemetry clock source; queues have no simulator reference of
        #: their own, so topology builders attach one for the queues
        #: worth observing (the bottleneck)
        self._probe_sim: Optional["Simulator"] = None

    def attach_probe(self, sim: "Simulator") -> None:
        """Bind this queue to ``sim`` for depth/drop telemetry.

        Samples go to ``sim.probe_sink`` stamped with virtual time; an
        unattached queue (or a no-op sink) emits nothing.
        """
        self._probe_sim = sim

    def _probe_depth(self) -> None:
        sim = self._probe_sim
        if sim is not None and sim.probe_sink.enabled:
            sim.probe_sink.sample(
                sim.now, QUEUE_DEPTH_CHANNEL, self.name, float(self._occupancy)
            )

    def _probe_drop(self) -> None:
        sim = self._probe_sim
        if sim is not None and sim.probe_sink.enabled:
            sim.probe_sink.sample(
                sim.now, QUEUE_DROPS_CHANNEL, self.name,
                self.counters.get("drops"),
            )

    # -- state ----------------------------------------------------------

    @property
    def occupancy_bytes(self) -> int:
        """Bytes currently queued."""
        return self._occupancy

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    # -- operations -------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Add ``packet``; returns False (and counts a drop) if it doesn't fit.

        The public entry point wraps the subclass-overridable
        :meth:`_enqueue` in a hot-path profiler span when the attached
        simulator collects one; an unattached queue (or the no-op
        profiler) pays one branch.
        """
        sim = self._probe_sim
        if sim is not None and sim.profiler.enabled:
            sim.profiler.enter(QUEUE_ENQUEUE)
            try:
                return self._enqueue(packet)
            finally:
                sim.profiler.exit(QUEUE_ENQUEUE)
        return self._enqueue(packet)

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        sim = self._probe_sim
        if sim is not None and sim.profiler.enabled:
            sim.profiler.enter(QUEUE_DEQUEUE)
            try:
                return self._dequeue()
            finally:
                sim.profiler.exit(QUEUE_DEQUEUE)
        return self._dequeue()

    def _enqueue(self, packet: Packet) -> bool:
        if self._occupancy + packet.size_bytes > self.capacity_bytes:
            self.counters.add("drops")
            self.counters.add("dropped_bytes", packet.size_bytes)
            self._probe_drop()
            return False
        self._mark(packet)
        self._items.append(packet)
        self._occupancy += packet.size_bytes
        self.counters.add("enqueued")
        self._probe_depth()
        return True

    def _dequeue(self) -> Optional[Packet]:
        if not self._items:
            return None
        packet = self._items.popleft()
        self._occupancy -= packet.size_bytes
        self.counters.add("dequeued")
        self._probe_depth()
        return packet

    # -- hooks ------------------------------------------------------------

    def _mark(self, packet: Packet) -> None:
        """Hook for AQM subclasses; DropTail never marks."""


class PriorityQueue(DropTailQueue):
    """pFabric-style priority queue (Alizadeh et al. 2013).

    Packets carry a priority (senders stamp the flow's *remaining*
    bytes). Scheduling follows pFabric's two rules:

    * **dequeue**: serve the most urgent *flow* (smallest current
      remaining), but within that flow transmit the *earliest* packet —
      never reorder a flow against itself (reordering would trigger
      spurious SACK-based retransmissions at the sender);
    * **drop**: when full, evict from the *least* urgent flow, newest
      packet first, in favour of a more urgent arrival.

    §5 of the paper identifies exactly this SRPT approximation as the
    transport direction for energy efficiency ("send as fast as possible
    for minimal completion time"). Unprioritized packets are treated as
    least urgent.
    """

    def __init__(self, capacity_bytes: int, name: str = "pq"):
        super().__init__(capacity_bytes, name=name)
        self._flows: dict = {}       # flow_id -> Deque[Packet], FIFO
        self._flow_prio: dict = {}   # flow_id -> latest stamped priority

    @staticmethod
    def _priority_of(packet: Packet) -> int:
        return packet.priority if packet.priority is not None else 1 << 62

    def _update_prio(self, flow_id: int, priority: int) -> None:
        current = self._flow_prio.get(flow_id)
        if current is None or priority < current:
            self._flow_prio[flow_id] = priority

    def _most_urgent_flow(self) -> Optional[int]:
        best = None
        for flow_id, queue in self._flows.items():
            if not queue:
                continue
            if best is None or self._flow_prio[flow_id] < self._flow_prio[best]:
                best = flow_id
        return best

    def _least_urgent_flow(self) -> Optional[int]:
        worst = None
        for flow_id, queue in self._flows.items():
            if not queue:
                continue
            if worst is None or self._flow_prio[flow_id] > self._flow_prio[worst]:
                worst = flow_id
        return worst

    def _enqueue(self, packet: Packet) -> bool:
        arriving_prio = self._priority_of(packet)
        count = self.counters.add
        while self._occupancy + packet.size_bytes > self.capacity_bytes:
            victim_flow = self._least_urgent_flow()
            if (
                victim_flow is None
                or self._flow_prio[victim_flow] <= arriving_prio
            ):
                count("drops")
                count("dropped_bytes", packet.size_bytes)
                self._probe_drop()
                return False
            victim = self._flows[victim_flow].pop()  # newest of worst flow
            self._occupancy -= victim.size_bytes
            count("drops")
            count("evictions")
            count("dropped_bytes", victim.size_bytes)
            self._probe_drop()
        queue = self._flows.setdefault(packet.flow_id, deque())
        queue.append(packet)
        self._update_prio(packet.flow_id, arriving_prio)
        self._occupancy += packet.size_bytes
        self.counters.add("enqueued")
        self._probe_depth()
        return True

    def _dequeue(self) -> Optional[Packet]:
        flow_id = self._most_urgent_flow()
        if flow_id is None:
            return None
        packet = self._flows[flow_id].popleft()  # earliest packet, in order
        if not self._flows[flow_id]:
            del self._flows[flow_id]
            del self._flow_prio[flow_id]
        self._occupancy -= packet.size_bytes
        self.counters.add("dequeued")
        self._probe_depth()
        return packet

    def __len__(self) -> int:
        return sum(len(q) for q in self._flows.values())

    @property
    def empty(self) -> bool:
        return all(not q for q in self._flows.values())


class EcnQueue(DropTailQueue):
    """DropTail plus DCTCP-style step marking.

    Packets that are ECN-capable get their CE bit set when the
    instantaneous queue occupancy (at enqueue time) is at or above
    ``mark_threshold_bytes`` — the single-threshold marking DCTCP
    expects from the switch (paper's testbed is a Tofino doing exactly
    this).
    """

    def __init__(
        self,
        capacity_bytes: int,
        mark_threshold_bytes: int,
        name: str = "ecn-queue",
    ):
        super().__init__(capacity_bytes, name=name)
        if not 0 < mark_threshold_bytes <= capacity_bytes:
            raise NetworkConfigError(
                f"mark threshold {mark_threshold_bytes} must be in "
                f"(0, {capacity_bytes}]"
            )
        self.mark_threshold_bytes = mark_threshold_bytes

    def _mark(self, packet: Packet) -> None:
        if packet.ecn_capable and self._occupancy >= self.mark_threshold_bytes:
            packet.ecn_marked = True
            self.counters.add("ecn_marks")
