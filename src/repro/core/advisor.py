"""Energy advisor: the user-facing "what should I do" API.

Downstream users of this library mostly want three questions answered:

1. *How much energy would allocation X cost vs the fair share?*
   (:meth:`EnergyAdvisor.compare_allocations`)
2. *What's the cheapest way to run these n transfers?*
   (:meth:`EnergyAdvisor.recommend`)
3. *What does that saving mean in dollars at datacenter scale?*
   (:meth:`EnergyAdvisor.annualized_value`)

Everything here is analytic (power-model arithmetic, no simulation) so it
answers in microseconds; the simulation-backed figure pipelines serve as
its validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.savings import DatacenterCostModel
from repro.core.scheduler import GreenScheduler, TransferRequest
from repro.core.theorem import is_strictly_concave_on, total_power
from repro.energy.power_model import PowerModel
from repro.errors import AnalysisError
from repro.units import gbps


@dataclass
class AllocationComparison:
    """Analytic power comparison between the fair share and another plan."""

    fair_power_w: float
    alternative_power_w: float

    @property
    def savings_fraction(self) -> float:
        """Positive when the alternative is cheaper."""
        return (self.fair_power_w - self.alternative_power_w) / self.fair_power_w


class EnergyAdvisor:
    """Analytic advisor built on the calibrated power model."""

    def __init__(
        self,
        capacity_gbps: float = 10.0,
        model: Optional[PowerModel] = None,
        load: float = 0.0,
    ):
        if capacity_gbps <= 0:
            raise AnalysisError(f"capacity must be > 0, got {capacity_gbps}")
        self.capacity_gbps = capacity_gbps
        self.model = model or PowerModel()
        self.load = load

    def _p(self, throughput_gbps: float) -> float:
        return self.model.smooth_sending_power_w(throughput_gbps, self.load)

    def concavity_holds(self) -> bool:
        """Whether the premise of Theorem 1 holds for the current model."""
        return is_strictly_concave_on(self._p, 0.0, self.capacity_gbps)

    def compare_allocations(
        self, throughputs_gbps: Sequence[float]
    ) -> AllocationComparison:
        """Compare a concrete allocation against the fair share of the
        same aggregate."""
        if not throughputs_gbps:
            raise AnalysisError("need at least one flow")
        total = sum(throughputs_gbps)
        if total > self.capacity_gbps * (1 + 1e-9):
            raise AnalysisError(
                f"allocation exceeds capacity ({total} > {self.capacity_gbps})"
            )
        n = len(throughputs_gbps)
        fair = total_power(self._p, [total / n] * n)
        alt = total_power(self._p, list(throughputs_gbps))
        return AllocationComparison(fair_power_w=fair, alternative_power_w=alt)

    def recommend(
        self, transfer_sizes_bytes: Sequence[int]
    ) -> "Recommendation":
        """Best known plan for a batch of transfers: serialize at line
        rate, shortest first."""
        requests = [
            TransferRequest(name=f"xfer-{i}", size_bytes=size)
            for i, size in enumerate(transfer_sizes_bytes)
        ]
        scheduler = GreenScheduler(gbps(self.capacity_gbps), self.model)
        fair = scheduler.predicted_fair_energy_j(requests)
        serialized = scheduler.predicted_serialized_energy_j(requests)
        return Recommendation(
            schedule=[t.request.name for t in scheduler.schedule(requests)],
            fair_energy_j=fair,
            serialized_energy_j=serialized,
        )

    def annualized_value(
        self,
        savings_fraction: float,
        cost_model: Optional[DatacenterCostModel] = None,
    ) -> float:
        """$/year the given fractional saving is worth at DC scale."""
        cost_model = cost_model or DatacenterCostModel()
        return cost_model.annual_savings_usd(savings_fraction)


@dataclass
class Recommendation:
    """Output of :meth:`EnergyAdvisor.recommend`."""

    schedule: List[str]
    fair_energy_j: float
    serialized_energy_j: float

    @property
    def savings_fraction(self) -> float:
        """Energy saved by following the recommendation."""
        return (self.fair_energy_j - self.serialized_energy_j) / self.fair_energy_j
