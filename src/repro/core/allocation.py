"""Bandwidth-allocation strategies for flows sharing a bottleneck.

The paper's Fig. 1 sweeps a family of allocations for two equal-size
transfers on one link, from "flow 1 gets (almost) nothing" through the
TCP fair share to "flow 1 gets (almost) everything", plus the extreme
*full speed, then idle* schedule where the flows take turns at line rate.

An :class:`AllocationPlan` describes, per flow, a target rate and a start
time; :func:`fig1_allocations` generates the paper's sweep. The plans are
consumed by the experiment harness, which realizes them with iperf-style
rate caps (``-b``) and staggered starts — exactly how the paper's scripts
realize them on the testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ExperimentError

#: the sweep's anchor plan names (consumers match on these, not literals)
FAIR_PLAN_NAME = "fair"
FSTI_PLAN_NAME = "full-speed-then-idle"


@dataclass
class FlowPlan:
    """Rate cap and start time for one flow."""

    total_bytes: int
    #: application-level rate cap (None = unlimited, take what TCP gives)
    target_rate_bps: Optional[float]
    start_time_s: float = 0.0
    #: lift this flow's rate cap when the flow at this index completes
    #: ("allowing the remaining flow to use the rest of the link")
    uncap_after: Optional[int] = None


@dataclass
class AllocationPlan:
    """A named bandwidth-allocation schedule for n flows."""

    name: str
    flows: List[FlowPlan]
    #: fraction of the bottleneck nominally held by flow 0 (Fig. 1 x-axis);
    #: None for schedules where the notion doesn't apply
    flow0_fraction: Optional[float] = None

    @property
    def n_flows(self) -> int:
        return len(self.flows)


def fair_split(
    total_bytes: int, capacity_bps: float, n_flows: int = 2
) -> AllocationPlan:
    """Everybody gets C/n simultaneously — the TCP fair share."""
    share = capacity_bps / n_flows
    return AllocationPlan(
        name=FAIR_PLAN_NAME,
        flows=[FlowPlan(total_bytes, share) for _ in range(n_flows)],
        flow0_fraction=1.0 / n_flows,
    )


def limited_flow_split(
    total_bytes: int,
    capacity_bps: float,
    fraction: float,
) -> AllocationPlan:
    """Flow 0 holds ``fraction`` of the link while both flows share it.

    The paper's Fig. 1 methodology: "We limited the throughput of one
    flow, allowing the remaining flow to use the rest of the link." The
    *capped* flow is always the majority one; the uncapped flow takes
    what is left during sharing and inherits the whole link once the
    capped flow completes — so the bottleneck stays fully utilized and
    both flows always finish in the same total time, whatever the split.
    (Capping the minority flow instead would leave the link mostly idle
    for its long tail, which is a different — and strictly worse —
    experiment.)
    """
    if not 0.0 < fraction < 1.0:
        raise ExperimentError(f"fraction must be in (0, 1), got {fraction}")
    minority_share = min(fraction, 1.0 - fraction)
    if fraction >= 0.5:
        majority_idx, minority_idx = 0, 1  # flow 0 holds the majority
    else:
        majority_idx, minority_idx = 1, 0
    flows = [
        FlowPlan(total_bytes, None),
        FlowPlan(total_bytes, None),
    ]
    flows[minority_idx] = FlowPlan(
        total_bytes,
        minority_share * capacity_bps,
        uncap_after=majority_idx,
    )
    return AllocationPlan(
        name=f"limited-{fraction:.2f}",
        flows=flows,
        flow0_fraction=fraction,
    )


def full_speed_then_idle(
    total_bytes: int,
    capacity_bps: float,
    n_flows: int = 2,
    guard_s: float = 0.0,
) -> AllocationPlan:
    """Flows run one after another, each at line rate (the cheapest plan).

    Start times are staggered by each predecessor's ideal transfer time
    plus ``guard_s``. In the harness the successor actually starts when
    its predecessor *completes* (so loss never overlaps them); the times
    here are the nominal schedule.
    """
    duration = total_bytes * 8.0 / capacity_bps
    flows = [
        FlowPlan(total_bytes, None, start_time_s=i * (duration + guard_s))
        for i in range(n_flows)
    ]
    return AllocationPlan(name=FSTI_PLAN_NAME, flows=flows, flow0_fraction=1.0)


def fig1_allocations(
    total_bytes: int,
    capacity_bps: float,
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
) -> List[AllocationPlan]:
    """The paper's Fig. 1 sweep: capped splits plus the serialized extreme."""
    plans = []
    for fraction in fractions:
        if abs(fraction - 0.5) < 1e-9:
            plans.append(fair_split(total_bytes, capacity_bps))
        else:
            plans.append(limited_flow_split(total_bytes, capacity_bps, fraction))
    plans.append(full_speed_then_idle(total_bytes, capacity_bps))
    return plans
