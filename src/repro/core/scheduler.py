"""Green flow scheduling: choose allocations that minimize energy.

The paper's forward-looking sections (§5) suggest CCAs/schedulers should
"send as fast as possible for minimal completion time" — i.e. approximate
SRPT — because under a strictly concave power curve serialization beats
sharing. This module turns that into a small, testable scheduler API:

* :class:`GreenScheduler` orders a batch of transfers for serialized
  full-speed execution (SRPT by default) and predicts energy for both
  the fair-share and serialized executions using the analytic power
  model, so callers can see the predicted saving before committing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.energy.power_model import PowerModel
from repro.errors import AnalysisError
from repro.units import BITS_PER_BYTE, to_gbps


@dataclass
class TransferRequest:
    """One pending bulk transfer."""

    name: str
    size_bytes: int

    def duration_at(self, rate_bps: float) -> float:
        """Seconds to move the payload at ``rate_bps``."""
        if rate_bps <= 0:
            raise AnalysisError(f"rate must be > 0, got {rate_bps}")
        return self.size_bytes * BITS_PER_BYTE / rate_bps


@dataclass
class ScheduledTransfer:
    """A transfer with its assigned start time (serialized schedule)."""

    request: TransferRequest
    start_time_s: float
    end_time_s: float


class GreenScheduler:
    """Serializes transfers at line rate, shortest-remaining first."""

    def __init__(self, capacity_bps: float, model: Optional[PowerModel] = None):
        if capacity_bps <= 0:
            raise AnalysisError(f"capacity must be > 0, got {capacity_bps}")
        self.capacity_bps = capacity_bps
        self.model = model or PowerModel()

    def schedule(
        self, requests: Sequence[TransferRequest], srpt: bool = True
    ) -> List[ScheduledTransfer]:
        """Back-to-back line-rate schedule (SRPT order by default)."""
        if not requests:
            raise AnalysisError("nothing to schedule")
        ordered = sorted(requests, key=lambda r: r.size_bytes) if srpt else list(
            requests
        )
        out: List[ScheduledTransfer] = []
        clock = 0.0
        for req in ordered:
            duration = req.duration_at(self.capacity_bps)
            out.append(ScheduledTransfer(req, clock, clock + duration))
            clock += duration
        return out

    # -- analytic energy predictions ------------------------------------

    def _line_rate_gbps(self) -> float:
        return to_gbps(self.capacity_bps)

    def predicted_serialized_energy_j(
        self, requests: Sequence[TransferRequest]
    ) -> float:
        """Energy if transfers run one-at-a-time at line rate.

        Each flow's package draws busy power while its transfer runs and
        idle power while the others run (the paper's §4.1 arithmetic).
        """
        schedule = self.schedule(requests)
        makespan = schedule[-1].end_time_s
        busy_p = self.model.smooth_sending_power_w(self._line_rate_gbps())
        idle_p = self.model.smooth_sending_power_w(0.0)
        total = 0.0
        for item in schedule:
            busy = item.end_time_s - item.start_time_s
            total += busy_p * busy + idle_p * (makespan - busy)
        return total

    def predicted_fair_energy_j(
        self, requests: Sequence[TransferRequest]
    ) -> float:
        """Energy if all transfers share the link at C/n until each
        finishes (equal-size flows finish together; unequal flows free
        capacity as they finish, processor-sharing style)."""
        remaining = sorted((r.size_bytes for r in requests), reverse=False)
        n_total = len(remaining)
        makespan_components: List[float] = []  # (per-flow busy durations)
        # Processor sharing: repeatedly run all active flows at C/n until
        # the smallest finishes.
        total_energy = 0.0
        clock = 0.0
        finish_times: List[float] = []
        active = list(remaining)
        while active:
            n = len(active)
            share_bps = self.capacity_bps / n
            smallest = active[0]
            dt = smallest * BITS_PER_BYTE / share_bps
            share_gbps = to_gbps(share_bps)
            power_each = self.model.smooth_sending_power_w(share_gbps)
            total_energy += n * power_each * dt
            clock += dt
            finish_times.append(clock)
            active = [b - smallest for b in active[1:]]
        makespan = clock
        # Finished flows idle until the last one completes.
        idle_p = self.model.smooth_sending_power_w(0.0)
        for finish in finish_times:
            total_energy += idle_p * (makespan - finish)
        # Packages of flows not yet started don't exist in this model —
        # all n_total start at t=0, so nothing else to add.
        del n_total, makespan_components
        return total_energy

    def predicted_savings_fraction(
        self, requests: Sequence[TransferRequest]
    ) -> float:
        """Predicted energy saving of serialized vs fair execution."""
        fair = self.predicted_fair_energy_j(requests)
        serialized = self.predicted_serialized_energy_j(requests)
        if fair <= 0:
            raise AnalysisError("fair-execution energy must be positive")
        return (fair - serialized) / fair
