"""Energy-savings arithmetic and the paper's dollar extrapolation.

§4.2: "The energy to run a typical data center rack is on the order of
$10k/year. With around 100k racks in a typical data center, a 1%
improvement corresponds to a cost savings of on the order of
$10 million/year."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy import calibration as cal
from repro.errors import AnalysisError


def savings_fraction(baseline_j: float, improved_j: float) -> float:
    """Fractional saving of ``improved`` vs ``baseline`` (positive = saves)."""
    if baseline_j <= 0:
        raise AnalysisError(f"baseline energy must be > 0, got {baseline_j}")
    return (baseline_j - improved_j) / baseline_j


def savings_percent(baseline_j: float, improved_j: float) -> float:
    """:func:`savings_fraction` in percent (the paper's Fig. 1 y-axis)."""
    return 100.0 * savings_fraction(baseline_j, improved_j)


@dataclass
class DatacenterCostModel:
    """Translates a fractional energy saving into $/year at scale."""

    rack_cost_usd_per_year: float = cal.RACK_COST_USD_PER_YEAR
    racks: int = cal.RACKS_PER_DATACENTER

    @property
    def total_energy_cost_usd_per_year(self) -> float:
        """Annual energy bill of the whole data center."""
        return self.rack_cost_usd_per_year * self.racks

    def annual_savings_usd(self, saving_fraction: float) -> float:
        """Dollars saved per year for a given fractional energy saving."""
        if not -1.0 <= saving_fraction <= 1.0:
            raise AnalysisError(
                f"saving fraction {saving_fraction} outside [-1, 1]"
            )
        return saving_fraction * self.total_energy_cost_usd_per_year


def paper_headline_savings() -> float:
    """The paper's headline: 1 % of a 100k-rack DC's bill ~= $10M/year."""
    return DatacenterCostModel().annual_savings_usd(0.01)
