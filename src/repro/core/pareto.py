"""The fairness-energy tradeoff, quantified.

The paper's title claim is qualitative: *unfair* can be *more
efficient*. This module makes the tradeoff curve explicit: for two flows
on one link, sweep the split, and report (Jain fairness index, total
power) pairs. Under a strictly concave power curve the curve is
monotone — every increment of fairness costs power — and the marginal
price of fairness is steepest at the fair end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.core.fairness import jain_index
from repro.core.theorem import total_power
from repro.energy.power_model import PowerModel
from repro.errors import AnalysisError


@dataclass
class ParetoPoint:
    """One allocation's fairness and power."""

    flow0_fraction: float
    fairness: float
    power_w: float


@dataclass
class ParetoCurve:
    """The fairness-power tradeoff for n=2 flows on one link."""

    points: List[ParetoPoint]
    capacity_gbps: float

    def is_monotone(self, tol: float = 1e-9) -> bool:
        """Whether power increases monotonically with fairness."""
        ordered = sorted(self.points, key=lambda p: p.fairness)
        return all(
            b.power_w >= a.power_w - tol
            for a, b in zip(ordered, ordered[1:])
        )

    def price_of_fairness(self) -> float:
        """Fractional extra power of the fairest vs the unfairest point."""
        ordered = sorted(self.points, key=lambda p: p.fairness)
        cheapest, priciest = ordered[0], ordered[-1]
        if cheapest.power_w <= 0:
            raise AnalysisError("power must be positive")
        return (priciest.power_w - cheapest.power_w) / cheapest.power_w

    def format_table(self) -> str:
        rows = [
            (f"{100 * p.flow0_fraction:.0f}%", p.fairness, p.power_w)
            for p in sorted(self.points, key=lambda p: p.flow0_fraction)
        ]
        return format_table(
            ["flow-0 share", "Jain index", "total power (W)"], rows
        )


def fairness_energy_curve(
    capacity_gbps: float = 10.0,
    fractions: Sequence[float] = tuple(i / 20 for i in range(1, 20)),
    model: Optional[PowerModel] = None,
    load: float = 0.0,
) -> ParetoCurve:
    """Analytic sweep of two-flow splits under the calibrated model."""
    if capacity_gbps <= 0:
        raise AnalysisError(f"capacity must be > 0, got {capacity_gbps}")
    model = model or PowerModel()
    p = lambda t: model.smooth_sending_power_w(t, load)  # noqa: E731
    points = []
    for fraction in fractions:
        if not 0.0 < fraction < 1.0:
            raise AnalysisError(f"fraction {fraction} outside (0, 1)")
        split = [fraction * capacity_gbps, (1 - fraction) * capacity_gbps]
        points.append(
            ParetoPoint(
                flow0_fraction=fraction,
                fairness=jain_index(split),
                power_w=total_power(p, split),
            )
        )
    return ParetoCurve(points=points, capacity_gbps=capacity_gbps)
