"""Fairness metrics for bandwidth allocations.

The paper argues *against* optimizing these — but quantifying unfairness
requires them. Jain's index is the standard the CC literature (and the
paper's reference [34]) uses; we also provide max-min style measures so
the Fig. 1 sweep can be labelled by "how unfair" each point is.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AnalysisError


def jain_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 means perfectly fair; 1/n means one flow hogs everything.
    """
    if not throughputs:
        raise AnalysisError("need at least one throughput")
    if any(x < 0 for x in throughputs):
        raise AnalysisError("throughputs must be non-negative")
    total = sum(throughputs)
    squares = sum(x * x for x in throughputs)
    if squares == 0:
        raise AnalysisError("all-zero allocation has undefined fairness")
    return (total * total) / (len(throughputs) * squares)


def throughput_imbalance(throughputs: Sequence[float]) -> float:
    """(max - min) / capacity-share spread, normalized to [0, 1].

    0 for the fair share; 1 when one flow has everything.
    """
    if len(throughputs) < 2:
        raise AnalysisError("imbalance needs >= 2 flows")
    total = sum(throughputs)
    if total <= 0:
        raise AnalysisError("total throughput must be positive")
    return (max(throughputs) - min(throughputs)) / total


def bandwidth_fraction(throughputs: Sequence[float], flow: int = 0) -> float:
    """Fraction of aggregate bandwidth held by one flow (Fig. 1's x-axis)."""
    total = sum(throughputs)
    if total <= 0:
        raise AnalysisError("total throughput must be positive")
    if not 0 <= flow < len(throughputs):
        raise AnalysisError(f"flow index {flow} out of range")
    return throughputs[flow] / total
