"""The paper's primary contribution: energy-aware allocation analysis."""

from __future__ import annotations

from repro.core.advisor import AllocationComparison, EnergyAdvisor, Recommendation
from repro.core.allocation import (
    AllocationPlan,
    FlowPlan,
    fair_split,
    fig1_allocations,
    full_speed_then_idle,
    limited_flow_split,
)
from repro.core.fairness import bandwidth_fraction, jain_index, throughput_imbalance
from repro.core.pareto import ParetoCurve, ParetoPoint, fairness_energy_curve
from repro.core.savings import (
    DatacenterCostModel,
    paper_headline_savings,
    savings_fraction,
    savings_percent,
)
from repro.core.scheduler import GreenScheduler, ScheduledTransfer, TransferRequest
from repro.core.theorem import (
    check_theorem1,
    fair_allocation,
    is_strictly_concave_on,
    theorem1_savings,
    total_power,
    worst_allocation_is_fair,
)

__all__ = [
    "EnergyAdvisor",
    "AllocationComparison",
    "Recommendation",
    "AllocationPlan",
    "FlowPlan",
    "fair_split",
    "limited_flow_split",
    "full_speed_then_idle",
    "fig1_allocations",
    "jain_index",
    "throughput_imbalance",
    "bandwidth_fraction",
    "fairness_energy_curve",
    "ParetoCurve",
    "ParetoPoint",
    "DatacenterCostModel",
    "savings_fraction",
    "savings_percent",
    "paper_headline_savings",
    "GreenScheduler",
    "TransferRequest",
    "ScheduledTransfer",
    "check_theorem1",
    "fair_allocation",
    "is_strictly_concave_on",
    "theorem1_savings",
    "total_power",
    "worst_allocation_is_fair",
]
