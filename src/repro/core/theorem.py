"""Theorem 1 of the paper, as executable mathematics.

    Let x in R^n_{>0} be the throughputs of n flows sharing a link of
    capacity C, and P(x) = sum_i p(x_i) the power usage. Let
    x* = (C/n, ..., C/n) and y any other allocation with sum_i y_i = C.
    If p is strictly concave, then P(x*) > P(y).

This module provides:

* :func:`total_power` — P(x) for a power curve p,
* :func:`fair_allocation` — x*,
* :func:`check_theorem1` — verify P(x*) > P(y) for a given y,
* :func:`is_strictly_concave_on` — numeric concavity test for p,
* :func:`worst_allocation_is_fair` — search confirmation that the fair
  point maximizes P over random simplex samples.

These are used both by unit/property tests (hypothesis generates concave
curves and allocations) and by the Theorem-1 benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Sequence

from repro.errors import AnalysisError
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:
    import random

PowerCurve = Callable[[float], float]


def total_power(p: PowerCurve, throughputs: Sequence[float]) -> float:
    """P(x) = sum_i p(x_i)."""
    if not throughputs:
        raise AnalysisError("need at least one flow")
    return sum(p(x) for x in throughputs)


def fair_allocation(capacity: float, n: int) -> List[float]:
    """The TCP fair share x* = (C/n, ..., C/n)."""
    if capacity <= 0:
        raise AnalysisError(f"capacity must be > 0, got {capacity}")
    if n < 1:
        raise AnalysisError(f"need >= 1 flow, got {n}")
    return [capacity / n] * n


def check_theorem1(
    p: PowerCurve, capacity: float, allocation: Sequence[float], tol: float = 1e-12
) -> bool:
    """True iff P(fair) > P(allocation) (strict, up to ``tol``).

    ``allocation`` must sum to ``capacity``; the theorem's conclusion is
    strict for any allocation that is not itself the fair one.
    """
    total = sum(allocation)
    if abs(total - capacity) > 1e-6 * max(1.0, capacity):
        raise AnalysisError(
            f"allocation sums to {total}, expected capacity {capacity}"
        )
    n = len(allocation)
    fair = total_power(p, fair_allocation(capacity, n))
    other = total_power(p, allocation)
    return fair > other - tol


def is_strictly_concave_on(
    p: PowerCurve, lo: float, hi: float, samples: int = 64, tol: float = 1e-9
) -> bool:
    """Numeric midpoint test: p((a+b)/2) > (p(a)+p(b))/2 on a grid."""
    if hi <= lo:
        raise AnalysisError(f"empty interval [{lo}, {hi}]")
    step = (hi - lo) / samples
    points = [lo + i * step for i in range(samples + 1)]
    for i in range(len(points)):
        for j in range(i + 2, len(points), max(1, (len(points) - i) // 8)):
            a, b = points[i], points[j]
            mid = p((a + b) / 2.0)
            chord = (p(a) + p(b)) / 2.0
            if mid <= chord + tol:
                return False
    return True


def random_allocation(
    capacity: float, n: int, rng: random.Random
) -> List[float]:
    """A random point on the {sum = C, x_i > 0} simplex."""
    cuts = sorted(rng.random() for _ in range(n - 1))
    shares = []
    prev = 0.0
    for c in cuts:
        shares.append((c - prev) * capacity)
        prev = c
    shares.append((1.0 - prev) * capacity)
    # Nudge exact zeros away from the boundary (theorem wants > 0).
    eps = capacity * 1e-9
    return [max(s, eps) for s in shares]


def worst_allocation_is_fair(
    p: PowerCurve,
    capacity: float,
    n: int,
    trials: int = 1000,
    seed: int = 0,
) -> bool:
    """Monte-Carlo confirmation: no sampled allocation beats the fair
    share's power draw."""
    rng = RngRegistry(seed).stream("theorem1-allocations")
    fair_power = total_power(p, fair_allocation(capacity, n))
    for _ in range(trials):
        alloc = random_allocation(capacity, n, rng)
        scale = capacity / sum(alloc)
        alloc = [a * scale for a in alloc]
        if total_power(p, alloc) > fair_power:
            return False
    return True


def theorem1_savings(
    p: PowerCurve, capacity: float, allocation: Sequence[float]
) -> float:
    """Fractional power saving of ``allocation`` vs the fair share.

    Positive when the allocation is cheaper, which Theorem 1 guarantees
    for every non-fair allocation under strict concavity.
    """
    n = len(allocation)
    fair = total_power(p, fair_allocation(capacity, n))
    if fair <= 0:
        raise AnalysisError("fair-share power must be positive")
    return (fair - total_power(p, allocation)) / fair
