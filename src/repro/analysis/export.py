"""Result export: JSON and CSV serialization of measurements.

The paper's artifact repository ships raw measurement files alongside
analysis scripts; these helpers do the same for simulated runs so
results can be plotted or post-processed outside Python.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Any, Dict, Sequence

from repro.errors import AnalysisError

if TYPE_CHECKING:  # avoid a runtime analysis <-> harness import cycle
    from repro.harness.runner import RepeatedResult, RunMeasurement


def run_to_dict(measurement: RunMeasurement) -> Dict[str, Any]:
    """A JSON-ready record of one run (series omitted; they're bulky)."""
    return {
        "scenario": measurement.scenario,
        "seed": measurement.seed,
        "energy_j": measurement.energy_j,
        "duration_s": measurement.duration_s,
        "average_power_w": measurement.average_power_w,
        "total_retransmissions": measurement.total_retransmissions,
        "bottleneck_drops": measurement.bottleneck_drops,
        "ecn_marks": measurement.ecn_marks,
        "flows": [
            {
                "flow_id": r.flow_id,
                "cca": r.cca,
                "bytes": r.bytes_transferred,
                "start_s": r.start_time,
                "end_s": r.end_time,
                "fct_s": r.duration_s,
                "throughput_bps": r.mean_throughput_bps,
                "retransmissions": r.retransmissions,
            }
            for r in measurement.flow_results
        ],
    }


def repeated_to_dict(result: RepeatedResult) -> Dict[str, Any]:
    """A JSON-ready record of a repeated scenario with summary stats."""
    return {
        "scenario": result.scenario,
        "repetitions": result.n,
        "mean_energy_j": result.mean_energy_j,
        "std_energy_j": result.std_energy_j,
        "mean_power_w": result.mean_power_w,
        "std_power_w": result.std_power_w,
        "mean_duration_s": result.mean_duration_s,
        "mean_retransmissions": result.mean_retransmissions,
        "runs": [run_to_dict(run) for run in result.runs],
    }


def to_json(
    results: Sequence[RepeatedResult], indent: int = 2
) -> str:
    """Serialize repeated results to a JSON document."""
    return json.dumps(
        [repeated_to_dict(r) for r in results], indent=indent
    )


def runs_to_csv(measurements: Sequence[RunMeasurement]) -> str:
    """One CSV row per run — the shape plotting tools want."""
    if not measurements:
        raise AnalysisError("nothing to export")
    fields = [
        "scenario",
        "seed",
        "energy_j",
        "duration_s",
        "average_power_w",
        "total_retransmissions",
        "bottleneck_drops",
        "ecn_marks",
    ]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields)
    writer.writeheader()
    for m in measurements:
        record = run_to_dict(m)
        writer.writerow({k: record[k] for k in fields})
    return buffer.getvalue()


def save_json(results: Sequence[RepeatedResult], path: str) -> None:
    """Write :func:`to_json` output to a file."""
    with open(path, "w") as handle:
        handle.write(to_json(results))


def save_csv(measurements: Sequence[RunMeasurement], path: str) -> None:
    """Write :func:`runs_to_csv` output to a file."""
    with open(path, "w") as handle:
        handle.write(runs_to_csv(measurements))
