"""Fairness-convergence analysis for competing flows.

Classic congestion-control evaluation (the paper's §2 lists fairness
[34] among the standard metrics): given per-flow throughput timeseries,
compute the Jain index over time and the time until the allocation
stays fair. Used by tests to verify that our CCA implementations
actually converge, and by the friendliness experiment to label pairings.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.fairness import jain_index
from repro.errors import AnalysisError
from repro.sim.trace import TimeSeries

#: keeps Jain's index defined when a flow's share is exactly zero
_EPS = 1e-9


def fairness_over_time(
    series: Sequence[TimeSeries],
) -> List[Tuple[float, float]]:
    """Per-sample (time, Jain index) for aligned throughput series.

    Samples where every flow is idle are skipped (fairness of nothing
    is undefined); series are aligned by index, which holds for probes
    sharing one interval.
    """
    if len(series) < 2:
        raise AnalysisError("fairness needs >= 2 flows")
    length = min(len(s) for s in series)
    if length == 0:
        raise AnalysisError("empty throughput series")
    out: List[Tuple[float, float]] = []
    for i in range(length):
        values = [s.values[i] for s in series]
        if all(v <= 0 for v in values):
            continue
        # Jain over active+idle flows, zeros included (an idle flow IS
        # unfairness), but guard the all-zero case above.
        floor = [max(v, 0.0) for v in values]
        if sum(floor) <= 0:
            continue
        out.append((series[0].times[i], jain_index([v + _EPS for v in floor])))
    if not out:
        raise AnalysisError("no active samples")
    return out


def convergence_time(
    series: Sequence[TimeSeries],
    threshold: float = 0.95,
    hold_samples: int = 5,
) -> Optional[float]:
    """First time the Jain index stays above ``threshold`` for
    ``hold_samples`` consecutive samples; None if it never converges."""
    points = fairness_over_time(series)
    run = 0
    for i, (t, fairness) in enumerate(points):
        if fairness >= threshold:
            run += 1
            if run >= hold_samples:
                return points[i - hold_samples + 1][0]
        else:
            run = 0
    return None


def mean_fairness(series: Sequence[TimeSeries]) -> float:
    """Average Jain index over the active window."""
    points = fairness_over_time(series)
    return sum(f for _t, f in points) / len(points)
