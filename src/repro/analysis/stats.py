"""Small statistics helpers used across the analysis layer.

Kept dependency-free (no numpy) so the core library stays pure-stdlib;
the figure pipelines and benchmarks only need means, sample standard
deviations and Pearson correlations (the paper reports exactly those:
std-dev error bars, corr(energy, power) = -0.8, corr(energy, retx) = 0.47).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import AnalysisError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise AnalysisError("mean of empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0 for n < 2."""
    n = len(values)
    if n == 0:
        raise AnalysisError("std of empty sequence")
    if n == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences."""
    if len(xs) != len(ys):
        raise AnalysisError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise AnalysisError("correlation needs >= 2 points")
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        raise AnalysisError("correlation undefined for constant sequence")
    return cov / math.sqrt(vx * vy)


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> "tuple[float, float]":
    """Least-squares slope and intercept of y on x."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise AnalysisError("fit needs >= 2 paired points")
    mx, my = mean(xs), mean(ys)
    vx = sum((x - mx) ** 2 for x in xs)
    if vx == 0:
        raise AnalysisError("fit undefined for constant x")
    slope = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / vx
    return slope, my - slope * mx


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> "tuple[float, float]":
    """Percentile-bootstrap confidence interval for the mean.

    The paper reports plain standard deviations; a bootstrap CI is the
    more defensible summary for the small (n=10) repetition counts its
    methodology uses, so the report generator offers both.
    """
    from repro.sim.rng import RngRegistry

    if not values:
        raise AnalysisError("bootstrap of empty sequence")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    if len(values) == 1:
        return values[0], values[0]
    rng = RngRegistry(seed).stream("bootstrap-resample")
    n = len(values)
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = int(alpha * resamples)
    hi_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return means[lo_index], means[hi_index]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise AnalysisError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise AnalysisError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
