"""Concavity diagnostics for measured power-vs-throughput curves.

The paper's central empirical claim is that measured power is a strictly
concave, increasing function of throughput (Fig. 2). Given sampled
(throughput, power) points, these helpers check:

* monotonicity (power increases with throughput),
* discrete concavity (second differences non-positive),
* decreasing marginal power (the phrasing used in §4.1), and
* the chord property: bursting at line rate then idling (the chord from
  p(0) to p(C)) beats smooth sending at every interior throughput.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import AnalysisError

Point = Tuple[float, float]


def _validate(points: Sequence[Point]) -> List[Point]:
    if len(points) < 3:
        raise AnalysisError("need >= 3 points for concavity analysis")
    ordered = sorted(points)
    xs = [p[0] for p in ordered]
    if len(set(xs)) != len(xs):
        raise AnalysisError("duplicate x values")
    return ordered

def is_increasing(points: Sequence[Point], tol: float = 0.0) -> bool:
    """Whether power rises with throughput (allowing ``tol`` slack)."""
    ordered = _validate(points)
    return all(
        b[1] >= a[1] - tol for a, b in zip(ordered, ordered[1:])
    )


def marginal_powers(points: Sequence[Point]) -> List[float]:
    """Per-interval marginal power (delta W per delta Gb/s)."""
    ordered = _validate(points)
    out = []
    for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
        if x1 == x0:
            raise AnalysisError("duplicate x in marginal computation")
        out.append((y1 - y0) / (x1 - x0))
    return out


def has_decreasing_marginals(points: Sequence[Point], tol: float = 0.0) -> bool:
    """§4.1's condition: marginal power decreases with throughput."""
    margins = marginal_powers(points)
    return all(b <= a + tol for a, b in zip(margins, margins[1:]))


def is_concave(points: Sequence[Point], tol: float = 0.0) -> bool:
    """Discrete concavity (equivalent to decreasing marginals)."""
    return has_decreasing_marginals(points, tol=tol)


def chord_gap(points: Sequence[Point]) -> List[float]:
    """Curve-minus-chord at each interior point.

    The chord runs from the first to the last sample; positive entries
    mean smooth sending at that throughput draws *more* power than the
    equivalent full-speed-then-idle time-average (Fig. 2's orange line).
    """
    ordered = _validate(points)
    (x0, y0), (xn, yn) = ordered[0], ordered[-1]
    if xn == x0:
        raise AnalysisError("degenerate chord")
    slope = (yn - y0) / (xn - x0)
    return [y - (y0 + slope * (x - x0)) for x, y in ordered[1:-1]]


def chord_always_below(points: Sequence[Point], tol: float = 0.0) -> bool:
    """Whether the full-speed-then-idle chord beats the curve everywhere."""
    return all(g > -tol for g in chord_gap(points))
