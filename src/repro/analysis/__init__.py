"""Analysis: statistics, concavity diagnostics, table formatting."""

from __future__ import annotations

from repro.analysis.concavity import (
    chord_always_below,
    chord_gap,
    has_decreasing_marginals,
    is_concave,
    is_increasing,
    marginal_powers,
)
from repro.analysis.convergence import (
    convergence_time,
    fairness_over_time,
    mean_fairness,
)
from repro.analysis.export import (
    run_to_dict,
    repeated_to_dict,
    runs_to_csv,
    save_csv,
    save_json,
    to_json,
)
from repro.analysis.report import Report, ReportSection, quick_report
from repro.analysis.stats import (
    bootstrap_ci,
    geometric_mean,
    linear_fit,
    mean,
    pearson,
    sample_std,
)
from repro.analysis.tables import format_series, format_table

__all__ = [
    "Report",
    "ReportSection",
    "quick_report",
    "bootstrap_ci",
    "fairness_over_time",
    "convergence_time",
    "mean_fairness",
    "run_to_dict",
    "repeated_to_dict",
    "runs_to_csv",
    "to_json",
    "save_json",
    "save_csv",
    "mean",
    "sample_std",
    "pearson",
    "linear_fit",
    "geometric_mean",
    "is_concave",
    "is_increasing",
    "marginal_powers",
    "has_decreasing_marginals",
    "chord_gap",
    "chord_always_below",
    "format_table",
    "format_series",
]
