"""Plain-text table rendering for figure pipelines and benchmarks.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output aligned and consistent without pulling in any
plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import AnalysisError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table."""
    if not headers:
        raise AnalysisError("table needs headers")
    rendered: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        rendered.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise AnalysisError(f"series length mismatch {len(xs)} vs {len(ys)}")
    return format_table([x_label, y_label], list(zip(xs, ys)), float_fmt="{:.4f}")
