"""Markdown experiment-report generation.

``greenenvy report`` runs a compact version of every reproduction
pipeline and renders one self-contained markdown document — the
regenerable core of EXPERIMENTS.md. Each section pairs the paper's
claim with the measured value so drift is visible at a glance.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.stats import bootstrap_ci, mean
from repro.units import MILLION


@dataclass
class ClaimRow:
    """One paper-claim-vs-measured comparison."""

    claim: str
    paper: str
    measured: str
    ok: bool

    def render(self) -> str:
        mark = "✓" if self.ok else "✗"
        return f"| {self.claim} | {self.paper} | {self.measured} | {mark} |"


@dataclass
class ReportSection:
    """One figure/experiment's section."""

    title: str
    rows: List[ClaimRow] = field(default_factory=list)
    preformatted: Optional[str] = None

    def add(self, claim: str, paper: str, measured: str, ok: bool) -> None:
        self.rows.append(ClaimRow(claim, paper, measured, ok))

    @property
    def all_ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def render(self) -> str:
        out = io.StringIO()
        out.write(f"## {self.title}\n\n")
        if self.rows:
            out.write("| claim | paper | measured | ok |\n")
            out.write("|---|---|---|---|\n")
            for row in self.rows:
                out.write(row.render() + "\n")
            out.write("\n")
        if self.preformatted:
            out.write("```\n")
            out.write(self.preformatted.rstrip("\n") + "\n")
            out.write("```\n\n")
        return out.getvalue()


@dataclass
class Report:
    """A complete reproduction report."""

    title: str
    sections: List[ReportSection] = field(default_factory=list)

    def section(self, title: str) -> ReportSection:
        sec = ReportSection(title)
        self.sections.append(sec)
        return sec

    @property
    def claims_total(self) -> int:
        return sum(len(s.rows) for s in self.sections)

    @property
    def claims_ok(self) -> int:
        return sum(1 for s in self.sections for r in s.rows if r.ok)

    def render(self) -> str:
        out = io.StringIO()
        out.write(f"# {self.title}\n\n")
        out.write(
            f"**{self.claims_ok}/{self.claims_total} paper claims "
            f"reproduced.**\n\n"
        )
        for sec in self.sections:
            out.write(sec.render())
        return out.getvalue()


def format_mean_ci(values: List[float], unit: str = "") -> str:
    """Render ``mean [lo, hi]`` with a bootstrap CI."""
    lo, hi = bootstrap_ci(values)
    suffix = f" {unit}" if unit else ""
    return f"{mean(values):.3f} [{lo:.3f}, {hi:.3f}]{suffix}"


def quick_report(
    transfer_bytes: int = 8_000_000,
    repetitions: int = 2,
    seed: int = 0,
) -> Report:
    """Run a compact end-to-end reproduction and build the report.

    Uses reduced sizes so the whole thing finishes in about a minute;
    the benchmark suite is the full-fidelity path.
    """
    from repro.core.savings import DatacenterCostModel
    from repro.core.theorem import worst_allocation_is_fair
    from repro.energy.power_model import PowerModel
    from repro.figures.fig1 import run_fig1
    from repro.figures.srpt import run_srpt_comparison
    from repro.harness.experiment import FlowSpec, Scenario
    from repro.harness.runner import run_repeated

    report = Report(
        title="Green With Envy — reproduction report (quick mode)"
    )

    # -- Theorem 1 -------------------------------------------------------
    sec = report.section("Theorem 1: fair share is the most power-hungry")
    model = PowerModel()
    holds = worst_allocation_is_fair(
        model.smooth_sending_power_w, 10.0, n=2, trials=500, seed=seed
    )
    sec.add(
        "no allocation beats the fair share's power",
        "theorem (strict concavity)",
        "holds over 500 random allocations" if holds else "violated",
        holds,
    )

    # -- Fig. 1 ------------------------------------------------------------
    sec = report.section("Figure 1: unfairness saves energy")
    fig1 = run_fig1(
        transfer_bytes=transfer_bytes,
        fractions=(0.2, 0.5, 0.8),
        repetitions=repetitions,
        base_seed=seed,
    )
    fair_worst = all(
        p.mean_energy_j <= fig1.fair_point.mean_energy_j * 1.001
        for p in fig1.points
    )
    sec.add(
        "fair allocation is the most expensive",
        "yes",
        "yes" if fair_worst else "no",
        fair_worst,
    )
    fsti = fig1.savings_vs_fair_percent(fig1.fsti_point)
    sec.add(
        "full-speed-then-idle saving",
        "~16%",
        f"{fsti:.1f}%",
        12.0 <= fsti <= 20.0,
    )
    sec.preformatted = fig1.format_table()

    # -- baseline / CCA comparison ------------------------------------------
    sec = report.section("§4.3: congestion control beats no-CC")
    energies = {}
    for cca in ("cubic", "baseline", "bbr2", "bbr"):
        result = run_repeated(
            Scenario(
                f"report-{cca}", flows=[FlowSpec(transfer_bytes, cca=cca)],
                packages=1,
            ),
            repetitions=repetitions,
            base_seed=seed,
        )
        energies[cca] = result.mean_energy_j
    cubic_saves = (energies["baseline"] - energies["cubic"]) / energies[
        "baseline"
    ]
    sec.add(
        "cubic saves energy vs the constant-cwnd baseline",
        "8.2-14.2%",
        f"{100 * cubic_saves:.1f}%",
        cubic_saves > 0.05,
    )
    bbr2_gap = (energies["bbr2"] - energies["bbr"]) / energies["bbr"]
    sec.add(
        "BBR2 (alpha) energy overhead vs BBR",
        "~40%",
        f"{100 * bbr2_gap:.0f}%",
        0.15 <= bbr2_gap <= 0.7,
    )

    # -- §4.2 dollars ------------------------------------------------------
    sec = report.section("§4.2: dollars at datacenter scale")
    dollars = DatacenterCostModel().annual_savings_usd(0.01)
    sec.add(
        "1% fleet-wide saving",
        "~$10M/year",
        f"${dollars / MILLION:.0f}M/year",
        abs(dollars - 10 * MILLION) < MILLION,
    )

    # -- §5 SRPT ----------------------------------------------------------
    sec = report.section("§5: SRPT transports are green and fast")
    srpt = run_srpt_comparison(
        batch=(transfer_bytes, transfer_bytes // 2, transfer_bytes // 4),
        seed=seed,
    )
    saving = srpt.energy_savings_vs_fair("srpt")
    speedup = srpt.fct_speedup_vs_fair("srpt")
    sec.add(
        "pFabric-style SRPT saves energy vs fair",
        "predicted by Theorem 1",
        f"{100 * saving:.1f}%",
        saving > 0.03,
    )
    sec.add(
        "and improves mean FCT",
        "SRPT-optimal",
        f"{speedup:.2f}x",
        speedup > 1.1,
    )
    sec.preformatted = srpt.format_table()

    return report
