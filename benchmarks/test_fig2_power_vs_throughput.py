"""Figure 2: rate of energy consumption vs throughput for a CUBIC sender.

Paper claims reproduced here:
* power is a strictly concave, increasing function of throughput,
* the curve passes the paper's anchors (21.49 W idle, 34.23 W at 5 Gb/s,
  35.82 W at 10 Gb/s),
* full-speed-then-idle (the chord) draws less average power than smooth
  sending at every interior throughput.
"""

import pytest

from benchmarks.conftest import BENCH_REPS, run_benchmarked
from repro.analysis.concavity import chord_always_below, is_concave, is_increasing
from repro.energy import calibration as cal
from repro.figures.fig2 import run_fig2


def test_fig2_power_vs_throughput(benchmark):
    result = run_benchmarked(
        benchmark,
        lambda: run_fig2(window_s=0.01, repetitions=BENCH_REPS),
    )
    print("\n== Figure 2: power vs throughput ==")
    print(result.format_table())

    smooth = result.smooth_curve()
    assert is_increasing(smooth, tol=0.3)
    # tol covers residual measurement noise on the nearly-flat tail; the
    # concavity signal (9+ W/Gbps marginal at the bottom vs <0.5 at the
    # top) is two orders of magnitude larger.
    assert is_concave(smooth, tol=0.5)

    by_target = {p.target_gbps: p.mean_power_w for p in result.smooth}
    assert by_target[0.0] == pytest.approx(cal.P_IDLE_W, rel=0.02)
    assert by_target[5.0] == pytest.approx(cal.P_HALF_RATE_W, rel=0.03)
    assert by_target[10.0] == pytest.approx(cal.P_LINE_RATE_W, rel=0.03)

    # §4.1's marginal-power observation: the first 5 Gb/s cost ~60 % more
    # power, the next 5 Gb/s only ~5 %.
    first = (by_target[5.0] - by_target[0.0]) / by_target[0.0]
    second = (by_target[10.0] - by_target[5.0]) / by_target[5.0]
    assert first > 0.45
    assert second < 0.10

    # The burst-then-idle chord beats the curve at interior points.
    chord = {p.target_gbps: p.mean_power_w for p in result.full_speed_then_idle}
    for t, smooth_power in by_target.items():
        if 0.5 <= t <= 9.5:
            assert chord[t] < smooth_power
