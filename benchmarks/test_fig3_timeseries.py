"""Figure 3: throughput over time — fair sharing vs full speed, then idle.

Paper claims reproduced here:
* fair: both flows hold ~C/2 until both finish,
* serialized: each flow bursts at ~C then idles,
* every flow in both panels has the same experiment-window average (~C/2).
"""

import pytest

from benchmarks.conftest import TWO_FLOW_BYTES, run_benchmarked
from repro.figures.fig3 import run_fig3


def test_fig3_timeseries(benchmark):
    result = run_benchmarked(
        benchmark,
        lambda: run_fig3(transfer_bytes=TWO_FLOW_BYTES, probe_interval_s=1e-3),
    )
    for panel in ("fair", "fsti"):
        print(f"\n== Figure 3 ({panel}) throughput (Gb/s per ms) ==")
        for flow, series in result.panel(panel):
            line = " ".join(f"{v / 1e9:4.1f}" for v in series.values)
            print(f"flow {flow}: {line}")

    # Fair panel: both flows cruise near 5 Gb/s.
    for _flow, series in result.panel("fair"):
        busy = [v for v in series.values if v > 1e9]
        assert sum(busy) / len(busy) == pytest.approx(5e9, rel=0.15)

    # Serialized panel: each flow peaks near line rate.
    for _flow, series in result.panel("fsti"):
        assert max(series.values) > 8.5e9

    # Same average throughput over the window in both panels (the paper's
    # point: identical work, very different energy).
    for panel in ("fair", "fsti"):
        for avg in result.mean_throughputs_gbps(panel):
            assert avg == pytest.approx(5.0, rel=0.2)
