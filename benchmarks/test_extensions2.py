"""Second extension bench set: workloads, subflows, the fairness price.

* **Production workloads** (§5): web-search and data-mining traffic,
  fair vs SRPT — "SRPT is free".
* **Subflow multiplexing** (§2's MPTCP energy findings [59, 60]):
  sharing a package is free, spreading packages is ruinous.
* **Price of fairness** (title claim, quantified): the analytic
  fairness-power Pareto curve is monotone; with a linear power curve it
  is flat.
"""

import pytest

from benchmarks.conftest import run_benchmarked


def test_production_workload_energy(benchmark):
    from repro.figures.workload_energy import run_workload_energy

    def run():
        return {
            dist: run_workload_energy(distribution=dist, seed=0)
            for dist in ("web-search", "data-mining")
        }

    results = run_benchmarked(benchmark, run)
    for dist, result in results.items():
        print(f"\n== {dist}: {len(result.workload.flows)} flows, "
              f"offered load {result.workload.offered_load:.2f} ==")
        print(result.format_table())
        print(f"SRPT: {result.fct_speedup:.2f}x mean FCT at "
              f"{result.energy_ratio:.3f}x energy")
        # SRPT never slows the mean flow and never costs extra energy.
        assert result.fct_speedup > 1.0
        assert result.energy_ratio < 1.1


def test_mptcp_subflow_energy(benchmark):
    from repro.figures.mptcp import run_mptcp_comparison

    result = run_benchmarked(benchmark, run_mptcp_comparison)
    print("\n== subflow multiplexing (MPTCP, [59]) ==")
    print(result.format_table())
    print(f"spread penalty: +{100 * result.spread_penalty():.0f}%")
    # Sharing a package is free; spreading is ruinous.
    assert result.energy("subflows-shared") == pytest.approx(
        result.energy("single"), rel=0.1
    )
    assert result.spread_penalty() > 1.0


def test_mechanism_energy_breakdown(benchmark):
    from repro.figures.mechanisms import run_mechanism_breakdown

    result = run_benchmarked(benchmark, run_mechanism_breakdown)
    print("\n== per-mechanism energy attribution (§5's future work) ==")
    print(result.format_table())
    # Every CCA's components must account for its measured total.
    for row in result.rows:
        assert sum(row.components_j.values()) == pytest.approx(
            row.total_j, rel=0.02
        )
    # The attributions explain the figures: the baseline's extra cost is
    # visible churn (retransmissions); BBR2's is pure time (idle floor).
    baseline = result.row("baseline")
    cubic = result.row("cubic")
    bbr2 = result.row("bbr2")
    assert baseline.components_j["retransmissions"] > 10 * max(
        cubic.components_j["retransmissions"], 1e-6
    )
    assert bbr2.components_j["idle"] > 1.2 * cubic.components_j["idle"]


def test_friendliness_matrix(benchmark):
    from repro.figures.friendliness import run_friendliness_matrix

    result = run_benchmarked(
        benchmark,
        lambda: run_friendliness_matrix(ccas=("cubic", "bbr", "reno", "dctcp")),
    )
    print("\n== CCA friendliness (head-to-head), with energy ==")
    print(result.format_table())
    for p in result.pairings:
        assert 0.0 <= p.share_a <= 1.0
        assert p.energy_j > 0
    # Unfair pairings exist (the deployment reality [55] documents)...
    assert any(p.mean_fairness < 0.8 for p in result.pairings)
    # ...and no pairing costs wildly more than another for the same work.
    energies = [p.energy_j for p in result.pairings]
    assert max(energies) < 1.25 * min(energies)


def test_price_of_fairness(benchmark):
    from repro.core.pareto import fairness_energy_curve
    from repro.energy.power_model import PowerModel

    def run():
        return (
            fairness_energy_curve(),
            fairness_energy_curve(model=PowerModel(gamma_net=1.0)),
        )

    concave, linear = run_benchmarked(benchmark, run)
    print("\n== fairness-power Pareto curve (analytic) ==")
    print(concave.format_table())
    print(f"price of fairness (concave): "
          f"{100 * concave.price_of_fairness():.1f}%")
    print(f"price of fairness (linear):  "
          f"{100 * linear.price_of_fairness():.1f}%")
    assert concave.is_monotone()
    assert concave.price_of_fairness() > 0.02
    assert linear.price_of_fairness() == pytest.approx(0.0, abs=1e-9)
