"""§4.2's headline dollars: measured savings extrapolated to a datacenter.

Runs the fair vs full-speed-then-idle comparison end-to-end (simulation,
not the analytic model), then feeds the measured saving through the
paper's cost model ($10k/rack/year x 100k racks).
"""

import pytest

from benchmarks.conftest import BENCH_REPS, TWO_FLOW_BYTES, run_benchmarked
from repro.core.savings import DatacenterCostModel, savings_fraction
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_repeated
from repro.units import gbps


def test_savings_extrapolation(benchmark):
    def measure():
        fair = Scenario(
            "fair",
            flows=[
                FlowSpec(TWO_FLOW_BYTES, cca="cubic", target_rate_bps=gbps(5.0)),
                FlowSpec(TWO_FLOW_BYTES, cca="cubic", target_rate_bps=gbps(5.0)),
            ],
        )
        fsti = Scenario(
            "fsti",
            flows=[
                FlowSpec(TWO_FLOW_BYTES, cca="cubic"),
                FlowSpec(TWO_FLOW_BYTES, cca="cubic", after_flow=0),
            ],
        )
        return (
            run_repeated(fair, repetitions=BENCH_REPS),
            run_repeated(fsti, repetitions=BENCH_REPS),
        )

    fair, fsti = run_benchmarked(benchmark, measure)
    saving = savings_fraction(fair.mean_energy_j, fsti.mean_energy_j)
    cost_model = DatacenterCostModel()
    idle_dollars = cost_model.annual_savings_usd(saving)
    loaded_dollars = cost_model.annual_savings_usd(0.01)

    print("\n== §4.2 extrapolation ==")
    print(f"fair energy:      {fair.mean_energy_j:.3f} J "
          f"(power {fair.mean_power_w:.1f} W)")
    print(f"serialized energy:{fsti.mean_energy_j:.3f} J "
          f"(power {fsti.mean_power_w:.1f} W)")
    print(f"measured saving:  {100 * saving:.1f}% (paper: 16%)")
    print(f"at idle-host scale:   ${idle_dollars / 1e6:.0f}M/year")
    print(f"at 1% (loaded hosts): ${loaded_dollars / 1e6:.0f}M/year "
          f"(paper: ~$10M/year)")

    assert saving == pytest.approx(0.16, abs=0.03)
    assert loaded_dollars == pytest.approx(10e6)
