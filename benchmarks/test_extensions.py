"""§5 extension benches — the paper's future-work agenda, executed.

* **Standardized CC energy benchmark** including the production
  algorithms the paper could not evaluate (Swift, DCQCN, HPCC): "we
  invite the community to build a benchmark for a standardized
  evaluation of such algorithms" — this is that benchmark.
* **SRPT transports**: energy + FCT of pFabric-style in-network SRPT vs
  fair sharing vs app-level serialization.
* **Incast**: energy vs fan-in at fixed aggregate bytes.
* **Load imbalance across links** under load-independent vs
  rate-adaptive switch hardware.
"""

import pytest

from benchmarks.conftest import run_benchmarked
from repro.analysis.tables import format_table
from repro.cc.registry import PRODUCTION_ALGORITHMS
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_repeated


def test_production_cca_energy_benchmark(benchmark):
    """Swift/DCQCN/HPCC vs cubic and the baseline, one table."""

    def run():
        rows = []
        for cca in ("cubic", "baseline") + PRODUCTION_ALGORITHMS:
            scenario = Scenario(
                name=f"prod-{cca}",
                flows=[FlowSpec(20_000_000, cca=cca)],
                packages=1,
                int_telemetry=(cca == "hpcc"),
            )
            result = run_repeated(scenario, repetitions=2)
            rows.append(
                (
                    cca,
                    result.mean_energy_j,
                    result.mean_power_w,
                    result.mean_duration_s * 1e3,
                    int(result.mean_retransmissions),
                )
            )
        return rows

    rows = run_benchmarked(benchmark, run)
    print("\n== standardized CC energy benchmark (incl. production CCAs) ==")
    print(
        format_table(
            ["cca", "energy (J)", "power (W)", "fct (ms)", "retx"], rows
        )
    )
    by_name = {r[0]: r for r in rows}
    # The production algorithms hit line rate without loss and land in
    # the efficient cluster — well below the no-CC baseline.
    for cca in PRODUCTION_ALGORITHMS:
        assert by_name[cca][1] < by_name["baseline"][1], cca
        assert by_name[cca][4] == 0, cca
        assert by_name[cca][1] < 1.25 * by_name["cubic"][1], cca


def test_srpt_transport_energy(benchmark):
    from repro.figures.srpt import run_srpt_comparison

    result = run_benchmarked(benchmark, run_srpt_comparison)
    print("\n== SRPT-approximating transports ==")
    print(result.format_table())
    # Fair sharing is the energy-worst schedule; in-network SRPT
    # (pFabric) recovers most of the serialized ideal's saving while
    # also improving mean FCT.
    assert result.energy_savings_vs_fair("pfabric") > 0.05
    assert result.energy_savings_vs_fair("serialized") > result.energy_savings_vs_fair(
        "pfabric"
    ) - 0.05
    assert result.fct_speedup_vs_fair("pfabric") > 1.2


def test_incast_energy(benchmark):
    from repro.figures.incast import run_incast_sweep

    result = run_benchmarked(
        benchmark,
        lambda: run_incast_sweep(fan_ins=(1, 2, 4, 8), aggregate_bytes=20_000_000),
    )
    print("\n== incast: energy vs fan-in (fixed aggregate bytes) ==")
    print(result.format_table())
    print(f"energy growth 1 -> 8 senders: x{result.energy_growth():.2f}")
    # Fan-in is enforced fairness across hosts: energy grows steeply
    # even though the network work is constant.
    energies = [p.energy_j for p in result.points]
    assert all(b > a for a, b in zip(energies, energies[1:]))
    assert result.energy_growth() > 4.0


def test_load_imbalance_switch_energy(benchmark):
    from repro.figures.load_balance import run_hardware_comparison

    today, adaptive = run_benchmarked(benchmark, run_hardware_comparison)
    print("\n== load imbalance across links ==")
    print(today.format_table())
    print()
    print(adaptive.format_table())
    # Today's hardware: balance is energy-irrelevant. Rate-adaptive
    # hardware: consolidating and sleeping links saves.
    assert today.max_savings() == pytest.approx(0.0, abs=1e-12)
    assert adaptive.max_savings() > 0.03
