"""Generate ``benchmarks/BENCH_fabric.json`` — the fabric perf snapshot.

Runs the same 1k-flow leaf-spine sweep the fabric obs-diff gate replays
(``fabric --flows 1000 --ccas dctcp,dcqcn --mix rpc``) under a
recording observer and snapshots the ``sim_events_per_second`` gauge
each run reports, plus sim-loop wall time. This is the scale point the
ROADMAP's "1k+ concurrent flows" goal is measured at: regenerate with
``make bench-fabric`` after an intentional engine or fabric change and
commit the delta with it.

Numbers are machine-dependent by nature; the snapshot records the
interpreter and platform alongside them so comparisons stay honest.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.figures.fabric import run_fabric_figure  # noqa: E402
from repro.obs.journal import perf_clock  # noqa: E402
from repro.obs.observer import Observer, Span  # noqa: E402

#: keep in lockstep with FABRIC_SWEEP in the Makefile
SWEEP = {"n_flows": 1000, "ccas": ("dctcp", "dcqcn"), "mix": "rpc"}

SNAPSHOT_VERSION = 1


class _TimedSpan(Span):
    def __init__(self, recorder: "_Recorder", phase: str):
        self._recorder = recorder
        self._phase = phase
        self.wall_s = 0.0
        self._t0 = 0.0

    def add(self, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_TimedSpan":
        self._t0 = perf_clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.wall_s = perf_clock() - self._t0
        if self._phase == "sim_loop":
            self._recorder.loop_wall_s.append(self.wall_s)


class _Recorder(Observer):
    """In-memory observer: per-run events/sec gauges and loop spans."""

    enabled = True

    def __init__(self) -> None:
        self.events_per_second: List[float] = []
        self.loop_wall_s: List[float] = []

    def span(self, phase: str, **fields: Any) -> Span:
        return _TimedSpan(self, phase)

    def set_gauge(self, name, value, labels=None) -> None:
        if name == "sim_events_per_second":
            self.events_per_second.append(value)


def _stats(values: List[float]) -> Dict[str, float]:
    return {
        "min": round(min(values), 1),
        "median": round(statistics.median(values), 1),
        "max": round(max(values), 1),
    }


def snapshot() -> Dict[str, Any]:
    recorder = _Recorder()
    wall0 = perf_clock()
    run_fabric_figure(
        ccas=SWEEP["ccas"],
        n_flows=SWEEP["n_flows"],
        mix=SWEEP["mix"],
        observer=recorder,
    )
    wall_total = perf_clock() - wall0
    return {
        "version": SNAPSHOT_VERSION,
        "sweep": f"fabric --flows {SWEEP['n_flows']} "
        f"--ccas {','.join(SWEEP['ccas'])} --mix {SWEEP['mix']}",
        "runs": len(recorder.events_per_second),
        "events_per_second": _stats(recorder.events_per_second),
        "sim_loop_wall_s": {
            "total": round(sum(recorder.loop_wall_s), 3),
            "median": round(statistics.median(recorder.loop_wall_s), 4),
        },
        "sweep_wall_s": round(wall_total, 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_fabric.json"),
        help="where to write the snapshot JSON",
    )
    args = parser.parse_args(argv)
    payload = snapshot()
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    eps = payload["events_per_second"]
    print(
        f"wrote {args.output}: {payload['runs']} runs, "
        f"{eps['median']:.0f} events/s median "
        f"({payload['sweep_wall_s']:.1f}s sweep wall time)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
