"""Figure 4 / §4.2: power vs bitrate under background load, and the
full-speed-then-idle savings at each load level.

Paper claims reproduced here:
* the power curve shifts up and flattens as `stress` load grows,
* full-speed-then-idle still saves ~1 % at 25 % load and ~0.17 % at 75 %,
* at $10k/rack/year x 100k racks, 1 % is ~$10M/year.
"""

import pytest

from benchmarks.conftest import BENCH_REPS, run_benchmarked
from repro.core.savings import DatacenterCostModel
from repro.figures.fig4 import run_fig4


def test_fig4_loaded_hosts(benchmark):
    result = run_benchmarked(
        benchmark,
        lambda: run_fig4(window_s=0.01, repetitions=BENCH_REPS),
    )
    print("\n== Figure 4: power vs bitrate under load ==")
    print(result.format_table())

    savings = {
        load: result.savings_fsti_vs_fair_percent(load)
        for load in result.loads()
    }
    for load, pct in savings.items():
        print(f"FSTI savings at {100 * load:.0f}% load: {pct:.2f}%")

    # Monotone decrease of the savings with load.
    ordered = [savings[load] for load in sorted(savings)]
    assert all(b < a for a, b in zip(ordered, ordered[1:]))

    # Paper's reported points.
    assert savings[0.0] == pytest.approx(16.3, abs=1.5)
    assert savings[0.25] == pytest.approx(1.0, abs=0.5)
    assert savings[0.75] == pytest.approx(0.17, abs=0.15)

    # §4.2's extrapolation: ~1 % at 25 % load is ~$10M/year at scale.
    dollars = DatacenterCostModel().annual_savings_usd(savings[0.25] / 100.0)
    print(f"25%-load savings at datacenter scale: ${dollars / 1e6:.1f}M/year")
    assert 5e6 < dollars < 20e6

    # Curves flatten: the 10 Gb/s uplift over idle shrinks with load.
    def uplift(load):
        curve = {p.target_gbps: p.mean_power_w for p in result.curves[load]}
        return curve[10.0] - curve[0.0]

    assert uplift(0.75) < 0.25 * uplift(0.0)
