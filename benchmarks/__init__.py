"""Benchmark package (one bench per paper figure plus extensions)."""
