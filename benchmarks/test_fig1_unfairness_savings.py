"""Figure 1: energy savings over the fair allocation vs unfairness.

Paper claims reproduced here:
* the TCP fair share (50/50) is the *least* energy-efficient allocation,
* savings grow monotonically toward the extremes,
* the full-speed-then-idle schedule saves ~16 %.
"""

from benchmarks.conftest import BENCH_REPS, TWO_FLOW_BYTES, run_benchmarked
from repro.figures.fig1 import run_fig1


def test_fig1_unfairness_savings(benchmark):
    result = run_benchmarked(
        benchmark,
        lambda: run_fig1(
            transfer_bytes=TWO_FLOW_BYTES,
            fractions=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
            repetitions=BENCH_REPS,
        ),
    )
    print("\n== Figure 1: savings over fair allocation ==")
    print(result.format_table())
    print(f"max savings: {result.max_savings_percent:.1f}% (paper: ~16%)")

    fair = result.fair_point
    # Fair is the most expensive allocation in the sweep.
    for point in result.points:
        if point is not fair:
            assert point.mean_energy_j < fair.mean_energy_j, point.label
    # The serialized extreme is the cheapest and lands near 16 %.
    fsti_savings = result.savings_vs_fair_percent(result.fsti_point)
    assert 12.0 <= fsti_savings <= 20.0
    # Savings grow monotonically away from fair (allowing noise slack).
    ordered = sorted(
        (p for p in result.points if p.flow0_fraction is not None),
        key=lambda p: p.flow0_fraction,
    )
    upper = [p for p in ordered if p.flow0_fraction >= 0.5]
    savings = [result.savings_vs_fair_percent(p) for p in upper]
    assert all(b >= a - 0.75 for a, b in zip(savings, savings[1:]))
