"""Figure 7 / §4.5: energy vs flow completion time.

Paper claims reproduced here:
* energy is strongly, positively correlated with FCT,
* runs separate into two clusters: MTU >= 3000 (fast/cheap, bottom-left)
  and MTU 1500 (pps-bound, slow/expensive, top-right).
"""

from benchmarks.conftest import run_benchmarked
from repro.figures.fig7 import fig7_from_grid


def test_fig7_energy_vs_fct(benchmark, cca_mtu_grid):
    fig7 = run_benchmarked(benchmark, lambda: fig7_from_grid(cca_mtu_grid))
    print("\n== Figure 7: energy vs flow completion time ==")
    print(fig7.format_table())

    corr = fig7.energy_fct_correlation()
    print(f"corr(FCT, energy): {corr:.2f} (paper: strongly positive)")
    assert corr > 0.7

    small_cluster, large_cluster = fig7.cluster_means()
    print(
        f"MTU-1500 cluster:  fct={small_cluster[0]:.4f}s "
        f"energy={small_cluster[1]:.3f}J"
    )
    print(
        f"MTU>=3000 cluster: fct={large_cluster[0]:.4f}s "
        f"energy={large_cluster[1]:.3f}J"
    )
    # The paper's two clusters: 1500-byte runs are slower AND costlier.
    assert small_cluster[0] > 1.3 * large_cluster[0]
    assert small_cluster[1] > 1.1 * large_cluster[1]
