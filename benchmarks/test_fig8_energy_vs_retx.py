"""Figure 8 / §4.5: energy vs retransmissions.

Paper claims reproduced here:
* energy correlates positively with retransmission count once the
  highly-variable BBR2 runs are excluded (paper: 0.47),
* the no-CC baseline produces by far the most retransmissions and sits
  high on the energy axis.
"""

from benchmarks.conftest import run_benchmarked
from repro.figures.fig8 import fig8_from_grid


def test_fig8_energy_vs_retx(benchmark, cca_mtu_grid):
    fig8 = run_benchmarked(benchmark, lambda: fig8_from_grid(cca_mtu_grid))
    print("\n== Figure 8: energy vs retransmissions ==")
    print(fig8.format_table())

    corr = fig8.correlation(exclude=("bbr2",))
    log_corr = fig8.log_correlation(exclude=("bbr2",))
    print(f"corr(retx, energy) excl bbr2: {corr:.2f} (paper: 0.47)")
    print(f"corr(log retx, energy) excl bbr2: {log_corr:.2f}")
    assert corr > 0.2

    assert fig8.most_retransmitting_cca() == "baseline"

    # The baseline's retransmissions dwarf every real CCA's.
    grid = cca_mtu_grid
    baseline_retx = min(
        grid.cell("baseline", mtu).mean_retransmissions for mtu in grid.mtus()
    )
    for cca in grid.ccas():
        if cca == "baseline":
            continue
        worst = max(
            grid.cell(cca, mtu).mean_retransmissions for mtu in grid.mtus()
        )
        assert baseline_retx > worst, cca
