"""Observability overhead gates: tracing off must cost ~nothing.

The tentpole promise of ``repro.obs`` is zero-overhead-by-default:
every hook in the runner and executor goes through the shared no-op
observer, so a pipeline that never asked for ``--trace`` must run at
the same speed as one built before the observability layer existed.

Gate: the no-op observer path stays within 2 % of a baseline that
calls :func:`run_once` with an explicit ``observer=None`` (the exact
code path untraced production runs take). Min-of-N timing on each side
makes the comparison robust to scheduler noise; both sides run the
same simulations in the same process.

A second (informational, generously bounded) check keeps *enabled*
tracing cheap relative to the simulation it observes.
"""

import time

from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once
from repro.obs.observer import NULL_OBSERVER, Observer, TracingObserver
from repro.sim.probe import NULL_PROBE_SINK
from repro.sim.profile import HotPathProfiler

SIZE = 2_000_000
ROUNDS = 5
REPS_PER_ROUND = 4


def _scenario(name="bench-obs"):
    return Scenario(name=name, flows=[FlowSpec(SIZE)], packages=1)


def _min_wall_s(fn):
    """Best-of-ROUNDS wall time of ``fn`` (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_noop_observer_overhead_under_2_percent():
    scenario = _scenario()

    def baseline():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed, observer=None)

    def with_noop():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed, observer=NULL_OBSERVER)

    # Warm both paths (imports, allocator, branch caches) before timing.
    baseline()
    with_noop()

    base_s = _min_wall_s(baseline)
    noop_s = _min_wall_s(with_noop)
    overhead = (noop_s - base_s) / base_s
    assert overhead < 0.02, (
        f"no-op observer costs {100 * overhead:.2f}% "
        f"(baseline {base_s:.4f}s, no-op {noop_s:.4f}s)"
    )


def test_noop_probe_sink_overhead_under_2_percent():
    # The telemetry emission sites (sender ACK path, queue enqueue /
    # dequeue, CPU package flush) each check ``sink.enabled`` on the
    # hot path. With the default null sink that check must be all they
    # cost: within 2 % of the identical run.
    scenario = _scenario()

    def baseline():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed)

    def with_null_sink():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed, probe_sink=NULL_PROBE_SINK)

    baseline()
    with_null_sink()

    # Interleave the timed rounds so slow drift in machine load hits
    # both sides equally instead of biasing whichever ran last.
    base_s = null_s = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        baseline()
        base_s = min(base_s, time.perf_counter() - start)
        start = time.perf_counter()
        with_null_sink()
        null_s = min(null_s, time.perf_counter() - start)
    overhead = (null_s - base_s) / base_s
    assert overhead < 0.02, (
        f"no-op probe sink costs {100 * overhead:.2f}% "
        f"(baseline {base_s:.4f}s, null sink {null_s:.4f}s)"
    )


class _DisabledProfilerObserver(Observer):
    """Hands the runner a fresh disabled profiler every run.

    Same dispatch branch as the shared NULL_PROFILER default — the
    comparison gates that the profiler hooks cost exactly one
    attribute read and a branch per site when profiling is off.
    """

    def profiler(self, scenario, seed):
        return HotPathProfiler()


def test_noop_profiler_overhead_under_2_percent():
    # The engine dispatch loop, queue enqueue/dequeue, and the TCP ACK
    # path each check ``profiler.enabled`` when profiling is off. That
    # check must be all they cost: within 2 % of the identical run
    # using the shared no-op profiler.
    scenario = _scenario()
    disabled = _DisabledProfilerObserver()

    def baseline():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed)

    def with_disabled_profiler():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed, observer=disabled)

    baseline()
    with_disabled_profiler()

    # Interleave the timed rounds so slow drift in machine load hits
    # both sides equally instead of biasing whichever ran last.
    base_s = prof_s = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        baseline()
        base_s = min(base_s, time.perf_counter() - start)
        start = time.perf_counter()
        with_disabled_profiler()
        prof_s = min(prof_s, time.perf_counter() - start)
    overhead = (prof_s - base_s) / base_s
    assert overhead < 0.02, (
        f"no-op profiler costs {100 * overhead:.2f}% "
        f"(baseline {base_s:.4f}s, disabled profiler {prof_s:.4f}s)"
    )


def test_profiled_run_stays_proportionate(tmp_path):
    scenario = _scenario()

    def unprofiled():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed)

    unprofiled()
    base_s = _min_wall_s(unprofiled)

    def profiled():
        with TracingObserver(tmp_path / "ptrace", profile=True) as obs:
            for seed in range(REPS_PER_ROUND):
                run_once(scenario, seed=seed, observer=obs)

    profiled()
    profiled_s = _min_wall_s(profiled)
    # Collecting stack self-times reads the perf clock twice per
    # dispatch, so profiling is not free — but it must stay a small
    # multiple of the simulation it measures.
    assert profiled_s < 2.0 * base_s, (
        f"enabled profiling too expensive: {profiled_s:.4f}s vs {base_s:.4f}s"
    )


_WATCHER_SCRIPT = """
import sys, time, urllib.request
sys.path.insert(0, sys.argv[1])
from repro.obs.live import LiveSweepView, ProgressServer
view = LiveSweepView(sys.argv[2])
server = ProgressServer(view, port=0).start()
print(server.port, flush=True)
wake = 0
while True:  # killed by the test; a real watcher exits on complete
    view.poll()
    view.snapshot()
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/metrics", timeout=5
        ) as response:
            response.read()
    except OSError:
        pass
    # Near the obs-watch default interval, jittered so the wakeups
    # cannot phase-lock onto the benchmark's timing rounds.
    wake += 1
    time.sleep(0.6 + 0.13 * (wake % 5))
"""


def test_watcher_attached_overhead_under_2_percent(tmp_path):
    # The ``obs watch`` promise: watching is read-only and rides on
    # files the sweep writes anyway, so a live watcher -- tail polling
    # plus HTTP scrapes of the progress server, running as its own
    # process exactly like the CLI does -- must not slow the traced
    # sweep it observes. The watcher polls at a realistic cadence: on a
    # single-core box its wakeups are the one unavoidable cost, and a
    # watch screen refreshing 50x per second is not the deployment.
    import subprocess
    import sys
    from pathlib import Path

    from repro.harness.executor import WorkItem, run_work_items

    scenario = _scenario()
    # Bigger rounds than the other gates: sub-100ms timings are pure
    # scheduler jitter next to a 2% bar.
    items = [
        WorkItem(scenario=scenario, seed=seed)
        for seed in range(4 * REPS_PER_ROUND)
    ]
    quiet = tmp_path / "quiet"
    watched = tmp_path / "watched"
    watched.mkdir()
    src = Path(__file__).resolve().parent.parent / "src"

    def traced_only():
        run_work_items(items, observer=quiet)

    def traced_watched():
        run_work_items(items, observer=watched)

    watcher = subprocess.Popen(
        [sys.executable, "-c", _WATCHER_SCRIPT, str(src), str(watched)],
        stdout=subprocess.PIPE,
    )
    try:
        assert watcher.stdout is not None
        watcher.stdout.readline()  # the server is up and scraping
        traced_only()
        traced_watched()
        # Sum interleaved rounds instead of taking per-round mins: on a
        # one-core box every watcher wakeup steals its slice from
        # whichever side happens to be running, so per-round minima
        # compare "clean" rounds that may not exist. Over a whole
        # interleaved window the jittered wakeups land on both sides
        # evenly, and the sum isolates what the gate is really about:
        # the producer's own code path is identical watched or not.
        # Taking the best of a few windows then filters transient
        # background load, the same job min-of-N does in the other
        # gates.
        overhead = float("inf")
        for _ in range(3):
            base_s = watched_s = 0.0
            for _ in range(ROUNDS):
                start = time.perf_counter()
                traced_only()
                base_s += time.perf_counter() - start
                start = time.perf_counter()
                traced_watched()
                watched_s += time.perf_counter() - start
            overhead = min(overhead, (watched_s - base_s) / base_s)
    finally:
        watcher.kill()
        watcher.wait()
    assert overhead < 0.02, (
        f"attached watcher costs {100 * overhead:.2f}% in the best "
        f"window (last: traced-only {base_s:.4f}s, watched "
        f"{watched_s:.4f}s)"
    )


def test_enabled_tracing_stays_proportionate(tmp_path):
    scenario = _scenario()

    def untraced():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed)

    untraced()
    base_s = _min_wall_s(untraced)

    def traced():
        with TracingObserver(tmp_path / "trace") as obs:
            for seed in range(REPS_PER_ROUND):
                run_once(scenario, seed=seed, observer=obs)

    traced()
    traced_s = _min_wall_s(traced)
    # Journaling writes files, so it is not free — but it must stay a
    # small fraction of the simulation it describes.
    assert traced_s < 1.5 * base_s, (
        f"enabled tracing too expensive: {traced_s:.4f}s vs {base_s:.4f}s"
    )
