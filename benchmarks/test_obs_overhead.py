"""Observability overhead gates: tracing off must cost ~nothing.

The tentpole promise of ``repro.obs`` is zero-overhead-by-default:
every hook in the runner and executor goes through the shared no-op
observer, so a pipeline that never asked for ``--trace`` must run at
the same speed as one built before the observability layer existed.

Gate: the no-op observer path stays within 2 % of a baseline that
calls :func:`run_once` with an explicit ``observer=None`` (the exact
code path untraced production runs take). Min-of-N timing on each side
makes the comparison robust to scheduler noise; both sides run the
same simulations in the same process.

A second (informational, generously bounded) check keeps *enabled*
tracing cheap relative to the simulation it observes.
"""

import time

from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once
from repro.obs.observer import NULL_OBSERVER, Observer, TracingObserver
from repro.sim.probe import NULL_PROBE_SINK
from repro.sim.profile import HotPathProfiler

SIZE = 2_000_000
ROUNDS = 5
REPS_PER_ROUND = 4


def _scenario(name="bench-obs"):
    return Scenario(name=name, flows=[FlowSpec(SIZE)], packages=1)


def _min_wall_s(fn):
    """Best-of-ROUNDS wall time of ``fn`` (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_noop_observer_overhead_under_2_percent():
    scenario = _scenario()

    def baseline():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed, observer=None)

    def with_noop():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed, observer=NULL_OBSERVER)

    # Warm both paths (imports, allocator, branch caches) before timing.
    baseline()
    with_noop()

    base_s = _min_wall_s(baseline)
    noop_s = _min_wall_s(with_noop)
    overhead = (noop_s - base_s) / base_s
    assert overhead < 0.02, (
        f"no-op observer costs {100 * overhead:.2f}% "
        f"(baseline {base_s:.4f}s, no-op {noop_s:.4f}s)"
    )


def test_noop_probe_sink_overhead_under_2_percent():
    # The telemetry emission sites (sender ACK path, queue enqueue /
    # dequeue, CPU package flush) each check ``sink.enabled`` on the
    # hot path. With the default null sink that check must be all they
    # cost: within 2 % of the identical run.
    scenario = _scenario()

    def baseline():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed)

    def with_null_sink():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed, probe_sink=NULL_PROBE_SINK)

    baseline()
    with_null_sink()

    # Interleave the timed rounds so slow drift in machine load hits
    # both sides equally instead of biasing whichever ran last.
    base_s = null_s = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        baseline()
        base_s = min(base_s, time.perf_counter() - start)
        start = time.perf_counter()
        with_null_sink()
        null_s = min(null_s, time.perf_counter() - start)
    overhead = (null_s - base_s) / base_s
    assert overhead < 0.02, (
        f"no-op probe sink costs {100 * overhead:.2f}% "
        f"(baseline {base_s:.4f}s, null sink {null_s:.4f}s)"
    )


class _DisabledProfilerObserver(Observer):
    """Hands the runner a fresh disabled profiler every run.

    Same dispatch branch as the shared NULL_PROFILER default — the
    comparison gates that the profiler hooks cost exactly one
    attribute read and a branch per site when profiling is off.
    """

    def profiler(self, scenario, seed):
        return HotPathProfiler()


def test_noop_profiler_overhead_under_2_percent():
    # The engine dispatch loop, queue enqueue/dequeue, and the TCP ACK
    # path each check ``profiler.enabled`` when profiling is off. That
    # check must be all they cost: within 2 % of the identical run
    # using the shared no-op profiler.
    scenario = _scenario()
    disabled = _DisabledProfilerObserver()

    def baseline():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed)

    def with_disabled_profiler():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed, observer=disabled)

    baseline()
    with_disabled_profiler()

    # Interleave the timed rounds so slow drift in machine load hits
    # both sides equally instead of biasing whichever ran last.
    base_s = prof_s = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        baseline()
        base_s = min(base_s, time.perf_counter() - start)
        start = time.perf_counter()
        with_disabled_profiler()
        prof_s = min(prof_s, time.perf_counter() - start)
    overhead = (prof_s - base_s) / base_s
    assert overhead < 0.02, (
        f"no-op profiler costs {100 * overhead:.2f}% "
        f"(baseline {base_s:.4f}s, disabled profiler {prof_s:.4f}s)"
    )


def test_profiled_run_stays_proportionate(tmp_path):
    scenario = _scenario()

    def unprofiled():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed)

    unprofiled()
    base_s = _min_wall_s(unprofiled)

    def profiled():
        with TracingObserver(tmp_path / "ptrace", profile=True) as obs:
            for seed in range(REPS_PER_ROUND):
                run_once(scenario, seed=seed, observer=obs)

    profiled()
    profiled_s = _min_wall_s(profiled)
    # Collecting stack self-times reads the perf clock twice per
    # dispatch, so profiling is not free — but it must stay a small
    # multiple of the simulation it measures.
    assert profiled_s < 2.0 * base_s, (
        f"enabled profiling too expensive: {profiled_s:.4f}s vs {base_s:.4f}s"
    )


def test_enabled_tracing_stays_proportionate(tmp_path):
    scenario = _scenario()

    def untraced():
        for seed in range(REPS_PER_ROUND):
            run_once(scenario, seed=seed)

    untraced()
    base_s = _min_wall_s(untraced)

    def traced():
        with TracingObserver(tmp_path / "trace") as obs:
            for seed in range(REPS_PER_ROUND):
                run_once(scenario, seed=seed, observer=obs)

    traced()
    traced_s = _min_wall_s(traced)
    # Journaling writes files, so it is not free — but it must stay a
    # small fraction of the simulation it describes.
    assert traced_s < 1.5 * base_s, (
        f"enabled tracing too expensive: {traced_s:.4f}s vs {base_s:.4f}s"
    )
