"""Ablation benches: which modelling choices carry the results?

Beyond the paper — DESIGN.md's design-choice sensitivity studies:
* concavity on/off (Theorem 1's premise),
* BBR2 alpha-quality knobs on/off,
* DCTCP's ECN marking threshold,
* bottleneck buffer depth vs retransmissions.
"""

import pytest

from benchmarks.conftest import run_benchmarked
from repro.figures.ablation import (
    bbr2_alpha_ablation,
    buffer_ablation,
    concavity_ablation,
    concavity_exponent_sweep,
    ecn_threshold_ablation,
)


def test_concavity_ablation(benchmark):
    result = run_benchmarked(benchmark, concavity_ablation)
    print("\n== Ablation: concavity ==")
    print(f"concave curve FSTI saving: {100 * result.concave_savings_fraction:.1f}%")
    print(f"linear curve FSTI saving:  {100 * result.linear_savings_fraction:.1f}%")
    assert result.concave_savings_fraction == pytest.approx(0.163, abs=0.01)
    assert result.linear_savings_fraction == pytest.approx(0.0, abs=1e-9)


def test_concavity_exponent_sensitivity(benchmark):
    result = run_benchmarked(benchmark, concavity_exponent_sweep)
    print("\n== Ablation: concavity exponent (80/20 static split) ==")
    for gamma, saving in sorted(result.items()):
        print(f"gamma = {gamma:.2f}: saving {100 * saving:.2f}%")
    # Linear curve: exactly no saving (Theorem 1's boundary case).
    assert result[1.0] == pytest.approx(0.0, abs=1e-9)
    # Every strictly concave exponent saves something...
    for gamma, saving in result.items():
        if gamma < 1.0:
            assert saving > 0, gamma
    # ...and the *interior*-unfairness saving peaks at moderate gamma:
    # extreme concavity is nearly flat above zero, so an 80/20 split of
    # two busy flows stops mattering — only true idling pays there.
    peak_gamma = max(result, key=result.get)
    assert 0.2 <= peak_gamma <= 0.8
    assert result[peak_gamma] > result[min(result)]
    assert result[peak_gamma] > 0.02


def test_bbr2_alpha_ablation(benchmark):
    result = run_benchmarked(
        benchmark, lambda: bbr2_alpha_ablation(transfer_bytes=20_000_000)
    )
    print("\n== Ablation: BBR2 alpha quality ==")
    print(f"bbr energy:          {result.bbr_energy_j:.3f} J")
    print(f"bbr2 (alpha):        {result.alpha_energy_j:.3f} J "
          f"(+{100 * result.alpha_overhead_vs_bbr:.0f}% vs bbr)")
    print(f"bbr2 (mature knobs): {result.mature_energy_j:.3f} J "
          f"(+{100 * result.mature_overhead_vs_bbr:.0f}% vs bbr)")
    # The alpha knobs explain the bulk of the BBR2-vs-BBR gap.
    assert result.alpha_overhead_vs_bbr > 0.2
    assert result.mature_overhead_vs_bbr < 0.5 * result.alpha_overhead_vs_bbr


def test_ecn_threshold_ablation(benchmark):
    result = run_benchmarked(
        benchmark,
        lambda: ecn_threshold_ablation(
            thresholds_bytes=(25 * 1024, 100 * 1024, 400 * 1024),
            transfer_bytes=20_000_000,
        ),
    )
    print("\n== Ablation: DCTCP marking threshold ==")
    for threshold, energy in sorted(result.items()):
        print(f"K = {threshold // 1024:4d} KiB: {energy:.3f} J")
    energies = list(result.values())
    # DCTCP keeps working across a 16x threshold range (< 20% spread).
    assert max(energies) < 1.2 * min(energies)


def test_buffer_ablation(benchmark):
    result = run_benchmarked(
        benchmark,
        lambda: buffer_ablation(
            buffers_bytes=(256 * 1024, 1024 * 1024, 4 * 1024 * 1024),
            transfer_bytes=20_000_000,
        ),
    )
    print("\n== Ablation: bottleneck buffer depth (cubic) ==")
    for buffer_bytes, (energy, retx) in sorted(result.items()):
        print(
            f"buffer {buffer_bytes // 1024:5d} KiB: "
            f"energy {energy:.3f} J, retransmissions {retx}"
        )
    retx_by_buffer = [r for _b, (_e, r) in sorted(result.items())]
    # Shallower buffers lose more packets.
    assert retx_by_buffer[0] >= retx_by_buffer[-1]
