"""Figure 5 / §4.3-§4.4: total energy per CCA and MTU.

Paper claims reproduced here:
* every real CCA (except BBR2) uses less energy than the no-CC baseline
  (paper band: 8.2-14.2 % less),
* BBR2-alpha uses ~40 % more energy than BBR,
* raising the MTU from 1500 to 9000 bytes saves energy for every CCA
  (paper band: 13.4-31.9 %).
"""

from benchmarks.conftest import run_benchmarked
from repro.figures.fig5 import fig5_from_grid


def test_fig5_energy_by_cca(benchmark, cca_mtu_grid):
    fig5 = run_benchmarked(benchmark, lambda: fig5_from_grid(cca_mtu_grid))
    print("\n== Figure 5: energy by CCA and MTU ==")
    print(fig5.format_table())

    # Real CCAs beat the baseline at every MTU.
    for mtu in cca_mtu_grid.mtus():
        overheads = fig5.baseline_overhead_fraction(mtu)
        for cca, saving in overheads.items():
            if cca == "bbr2":
                continue
            assert saving > 0, f"{cca}@{mtu} should beat baseline"
        band = [s for c, s in overheads.items() if c != "bbr2"]
        print(
            f"CCA-vs-baseline savings @ MTU {mtu}: "
            f"{100 * min(band):.1f}%..{100 * max(band):.1f}% "
            f"(paper @1500: 8.2%..14.2%)"
        )

    # BBR2's alpha-release overhead vs BBR (paper: ~40 %).
    gap = fig5.bbr2_vs_bbr_fraction(9000)
    print(f"BBR2 vs BBR energy overhead @9000: {100 * gap:.0f}% (paper: ~40%)")
    assert 0.2 <= gap <= 0.7

    # Larger MTUs save energy for every algorithm.
    for cca in cca_mtu_grid.ccas():
        saving = fig5.mtu_savings_fraction(cca)
        print(f"MTU 1500->9000 saving for {cca}: {100 * saving:.1f}%")
        assert saving > 0.08, cca
