"""Executor-layer benchmarks: warm-cache speedup and backend parity.

Acceptance gates for the parallel, cacheable execution layer:

* a warm-cache rerun of the CCA x MTU grid completes >= 5x faster than
  the cold run that populated the cache (in practice it is orders of
  magnitude — JSON reads vs full simulations), and
* process-pool and serial backends produce identical measurements, so
  ``--jobs`` is purely a wall-clock knob.

Uses wall-clock timing directly (not pytest-benchmark rounds): the cold
run is a one-shot system experiment, like the figure benches.
"""

import time

from repro.figures.grid import run_cca_mtu_grid

from .conftest import BENCH_REPS

GRID_KWARGS = dict(
    transfer_bytes=4_000_000,
    mtus=(1500, 9000),
    ccas=("cubic", "bbr", "reno"),
    repetitions=BENCH_REPS,
    base_seed=0,
)


def test_warm_cache_rerun_is_5x_faster(tmp_path):
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold = run_cca_mtu_grid(**GRID_KWARGS, cache_dir=cache_dir)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_cca_mtu_grid(**GRID_KWARGS, cache_dir=cache_dir)
    warm_s = time.perf_counter() - start

    # bit-identical replay...
    for cell in cold.cells:
        twin = warm.cell(cell.cca, cell.mtu_bytes)
        assert cell.result.runs == twin.result.runs
    # ...at a fraction of the cost
    assert cold_s >= 5 * warm_s, (
        f"warm rerun not fast enough: cold {cold_s:.2f}s vs warm {warm_s:.2f}s"
    )


def test_process_backend_matches_serial(tmp_path):
    serial = run_cca_mtu_grid(**GRID_KWARGS)
    parallel = run_cca_mtu_grid(**GRID_KWARGS, jobs=4)
    for cell in serial.cells:
        twin = parallel.cell(cell.cca, cell.mtu_bytes)
        assert cell.mean_energy_j == twin.mean_energy_j
        assert cell.result.runs == twin.result.runs
