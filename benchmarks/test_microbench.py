"""Microbenchmarks of the simulator's hot paths.

Unlike the figure benches (one-shot experiments), these are classic
multi-round pytest-benchmark measurements: event-kernel throughput,
interval bookkeeping, the power-model arithmetic and a full small
transfer. They guard against performance regressions that would make
the figure benches unusably slow.
"""

import random

from repro.energy.power_model import IntervalActivity, PowerModel
from repro.net.packet import Packet
from repro.net.queue import PriorityQueue
from repro.sim.engine import Simulator
from repro.tcp.ranges import RangeSet


def test_event_kernel_throughput(benchmark):
    """Schedule + execute 10k events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 10_000


def test_rangeset_mixed_workload(benchmark):
    """SACK-style interval churn: adds, queries, trims."""
    rng = random.Random(7)
    operations = [
        (rng.randrange(0, 1_000_000), rng.randrange(1, 9000))
        for _ in range(2_000)
    ]

    def run():
        rs = RangeSet()
        for start, length in operations:
            rs.add(start, start + length)
            rs.first_missing_after(start)
        rs.trim_below(500_000)
        return rs.total_bytes

    total = benchmark(run)
    assert total > 0


def test_power_model_arithmetic(benchmark):
    """Per-interval power evaluation (runs once per sample per package)."""
    model = PowerModel()
    activity = IntervalActivity(
        duration_s=1e-3,
        wire_bytes=1_250_000,
        packet_events=200,
        cc_cost_units=100.0,
        retransmissions=2,
    )

    def run():
        total = 0.0
        for _ in range(1_000):
            total += model.power_w(activity)
        return total

    total = benchmark(run)
    assert total > 0


def test_priority_queue_churn(benchmark):
    """pFabric enqueue/dequeue under multi-flow contention."""
    rng = random.Random(3)
    arrivals = [
        (rng.randrange(8), rng.randrange(1, 1_000_000)) for _ in range(2_000)
    ]

    def run():
        queue = PriorityQueue(capacity_bytes=200_000)
        delivered = 0
        for flow, priority in arrivals:
            queue.enqueue(
                Packet(
                    flow_id=flow, src="a", dst="b",
                    payload_bytes=1000, priority=priority,
                )
            )
            if queue.occupancy_bytes > 100_000:
                packet = queue.dequeue()
                delivered += packet is not None
        return delivered

    delivered = benchmark(run)
    assert delivered > 0


def test_end_to_end_small_transfer(benchmark):
    """A complete 1 MB CUBIC transfer through the full stack."""
    from repro.apps.iperf import IperfSession, run_until_complete
    from repro.net.topology import TestbedConfig, build_testbed

    def run():
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig())
        session = IperfSession(testbed, total_bytes=1_000_000)
        result = run_until_complete(testbed, [session])[0]
        return result.bytes_transferred

    transferred = benchmark(run)
    assert transferred == 1_000_000
