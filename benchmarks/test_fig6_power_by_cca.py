"""Figure 6 / §4.3: average power per CCA and MTU.

Paper claims reproduced here:
* average power differs across CCAs (~14 % at MTU 1500),
* the power ranking differs from the energy ranking: corr(energy, power)
  across CCAs is strongly negative (paper: -0.8),
* BBR2 draws among the lowest power while costing the most energy.
"""

from benchmarks.conftest import run_benchmarked
from repro.figures.fig5 import fig5_from_grid
from repro.figures.fig6 import fig6_from_grid


def test_fig6_power_by_cca(benchmark, cca_mtu_grid):
    fig6 = run_benchmarked(benchmark, lambda: fig6_from_grid(cca_mtu_grid))
    print("\n== Figure 6: average power by CCA and MTU ==")
    print(fig6.format_table())

    spread = fig6.power_spread_fraction(1500)
    print(f"power spread across CCAs @1500: {100 * spread:.1f}% (paper: ~14%)")
    assert spread > 0.04

    # The paper computes this over the CCAs in the MTU-1500 ordering
    # context (§4.3): the low-power/high-energy outliers (bbr2, baseline)
    # dominate and flip the sign.
    corr = fig6.energy_power_correlation(1500)
    print(f"corr(total energy, average power) @1500: {corr:.2f} (paper: -0.8)")
    print(f"corr @9000 (informational): {fig6.energy_power_correlation(9000):.2f}")
    assert corr < -0.3

    # BBR2: low power, high energy — the paper's signature inversion
    # (visible in the MTU-1500 ordering both figures are sorted by).
    fig5 = fig5_from_grid(cca_mtu_grid)
    power_rank = fig6.cca_order_at_mtu(1500)
    energy_rank = fig5.cca_order_at_mtu(1500)
    assert power_rank.index("bbr2") == 0, "bbr2 should draw the least power"
    assert energy_rank.index("bbr2") == len(energy_rank) - 1, (
        "bbr2 should cost the most energy"
    )

    # Smaller MTU -> more packets/second -> more power, for every CCA.
    for cca in cca_mtu_grid.ccas():
        assert fig6.power_w(cca, 1500) > fig6.power_w(cca, 9000), cca
