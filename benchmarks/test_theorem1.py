"""Theorem 1: the fair share is the most power-hungry allocation.

Verifies the theorem numerically on the calibrated power curve and on a
family of synthetic strictly-concave curves, and cross-checks the
analytic prediction against the simulated Fig. 1 endpoints.
"""

import math

import pytest

from benchmarks.conftest import run_benchmarked
from repro.core.theorem import (
    is_strictly_concave_on,
    theorem1_savings,
    worst_allocation_is_fair,
)
from repro.energy.power_model import PowerModel


def test_theorem1(benchmark):
    model = PowerModel()
    p = model.smooth_sending_power_w

    def verify():
        results = {}
        results["concave"] = is_strictly_concave_on(p, 0.0, 10.0)
        for n in (2, 3, 4, 8):
            results[f"fair_is_worst_n{n}"] = worst_allocation_is_fair(
                p, 10.0, n=n, trials=2000
            )
        # synthetic concave families
        for gamma in (0.2, 0.5, 0.8):
            curve = lambda x, g=gamma: x**g  # noqa: E731
            results[f"powerlaw_{gamma}"] = worst_allocation_is_fair(
                curve, 10.0, n=3, trials=1000
            )
        results["log_curve"] = worst_allocation_is_fair(
            lambda x: math.log1p(x), 10.0, n=3, trials=1000
        )
        return results

    results = run_benchmarked(benchmark, verify)
    print("\n== Theorem 1 verification ==")
    for name, ok in results.items():
        print(f"{name}: {'PASS' if ok else 'FAIL'}")
    assert all(results.values())

    # The analytic extreme-allocation saving matches the paper's 16.3 %.
    saving = theorem1_savings(p, 10.0, [10.0, 0.0])
    print(f"extreme-allocation saving on calibrated curve: {100 * saving:.1f}%")
    assert saving == pytest.approx(0.163, abs=0.01)
