"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables/figures and prints
the same rows/series the paper reports. Absolute joules are smaller than
the paper's (transfers are scaled — DESIGN.md §5); the *shape* assertions
(who wins, by what factor, where crossovers fall) are the reproduction.

Environment knobs:

* ``GREENENVY_BENCH_BYTES``  — per-flow transfer size (default 12.5 MB
  for the two-flow experiments, 20 MB for the CCA grid)
* ``GREENENVY_BENCH_REPS``   — repetitions per scenario (default 2)
"""

from __future__ import annotations

import os

import pytest

from repro.figures.grid import run_cca_mtu_grid


def env_int(name: str, default: int) -> int:
    """Integer env override with a default."""
    return int(os.environ.get(name, default))


BENCH_REPS = env_int("GREENENVY_BENCH_REPS", 2)
TWO_FLOW_BYTES = env_int("GREENENVY_BENCH_BYTES", 12_500_000)
GRID_BYTES = env_int("GREENENVY_BENCH_GRID_BYTES", 20_000_000)


@pytest.fixture(scope="session")
def cca_mtu_grid():
    """The §4.3-§4.5 grid, run once and shared by the Fig. 5-8 benches."""
    return run_cca_mtu_grid(
        transfer_bytes=GRID_BYTES,
        repetitions=BENCH_REPS,
        base_seed=0,
    )


def run_benchmarked(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are system experiments, not microbenchmarks: a single round
    reports the experiment's wall time without re-running a multi-minute
    simulation five times.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
