"""Generate ``benchmarks/BENCH_sim.json`` — the committed perf snapshot.

Thin wrapper over :mod:`repro.obs.perfdiff`: runs the same canonical
sweep the obs-diff gate replays (``fig1 --bytes 400000 --reps 2``) and
writes the snapshot ``greenenvy obs perf-diff`` later gates against.
Regenerate with ``make bench-sim`` (or ``make bench-all`` for both
snapshots) after an intentional engine change and commit the delta with
it; ``--best-of N`` keeps the fastest of N attempts to suppress
machine noise.

Numbers are machine-dependent by nature; the snapshot records the
interpreter and platform alongside them so comparisons stay honest.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs.perfdiff import (  # noqa: E402
    BENCH_SIM_FILENAME,
    save_snapshot,
    sim_snapshot,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output",
        default=str(Path(__file__).resolve().parent / BENCH_SIM_FILENAME),
        help="where to write the snapshot JSON",
    )
    parser.add_argument(
        "-n", "--best-of", type=int, default=1,
        help="run the sweep N times and keep the fastest attempt",
    )
    args = parser.parse_args(argv)
    payload = sim_snapshot(best_of=args.best_of)
    save_snapshot(payload, args.output)
    eps = payload["events_per_second"]
    print(
        f"wrote {args.output}: {payload['runs']} runs, "
        f"{eps['median']:.0f} events/s median "
        f"({payload['sweep_wall_s']:.1f}s sweep wall time, "
        f"best of {payload['attempts']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
