"""Generate ``benchmarks/BENCH_sim.json`` — the committed perf snapshot.

Runs the same canonical sweep the obs-diff gate replays (``fig1 --bytes
400000 --reps 2``) under a recording observer and snapshots the
``sim_events_per_second`` gauge each run reports, plus sim-loop wall
time. The committed JSON is the reference point the ROADMAP's "fast as
the hardware allows" goal is measured against: regenerate with ``make
bench-sim`` after an intentional engine change and commit the delta
with it.

Numbers are machine-dependent by nature; the snapshot records the
interpreter and platform alongside them so comparisons stay honest.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.figures.fig1 import run_fig1  # noqa: E402
from repro.obs.observer import Observer, Span  # noqa: E402
from repro.obs.journal import perf_clock  # noqa: E402

#: keep in lockstep with BASELINE_SWEEP in the Makefile
SWEEP = {"transfer_bytes": 400_000, "repetitions": 2}

SNAPSHOT_VERSION = 1


class _TimedSpan(Span):
    def __init__(self, recorder: "_Recorder", phase: str):
        self._recorder = recorder
        self._phase = phase
        self.wall_s = 0.0
        self._t0 = 0.0

    def add(self, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_TimedSpan":
        self._t0 = perf_clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.wall_s = perf_clock() - self._t0
        if self._phase == "sim_loop":
            self._recorder.loop_wall_s.append(self.wall_s)


class _Recorder(Observer):
    """In-memory observer: per-run events/sec gauges and loop spans."""

    enabled = True

    def __init__(self) -> None:
        self.events_per_second: List[float] = []
        self.loop_wall_s: List[float] = []

    def span(self, phase: str, **fields: Any) -> Span:
        return _TimedSpan(self, phase)

    def set_gauge(self, name, value, labels=None) -> None:
        if name == "sim_events_per_second":
            self.events_per_second.append(value)


def _stats(values: List[float]) -> Dict[str, float]:
    return {
        "min": round(min(values), 1),
        "median": round(statistics.median(values), 1),
        "max": round(max(values), 1),
    }


def snapshot() -> Dict[str, Any]:
    recorder = _Recorder()
    wall0 = perf_clock()
    run_fig1(
        transfer_bytes=SWEEP["transfer_bytes"],
        repetitions=SWEEP["repetitions"],
        observer=recorder,
    )
    wall_total = perf_clock() - wall0
    return {
        "version": SNAPSHOT_VERSION,
        "sweep": f"fig1 --bytes {SWEEP['transfer_bytes']} "
        f"--reps {SWEEP['repetitions']}",
        "runs": len(recorder.events_per_second),
        "events_per_second": _stats(recorder.events_per_second),
        "sim_loop_wall_s": {
            "total": round(sum(recorder.loop_wall_s), 3),
            "median": round(statistics.median(recorder.loop_wall_s), 4),
        },
        "sweep_wall_s": round(wall_total, 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_sim.json"),
        help="where to write the snapshot JSON",
    )
    args = parser.parse_args(argv)
    payload = snapshot()
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    eps = payload["events_per_second"]
    print(
        f"wrote {args.output}: {payload['runs']} runs, "
        f"{eps['median']:.0f} events/s median "
        f"({payload['sweep_wall_s']:.1f}s sweep wall time)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
